"""Seeded differential fuzzing of the two simulation kernels.

The repo's core correctness invariant — ``execute_run_fast(config)``
bit-identical to ``execute_run(config)`` — is pinned by a hand-written
differential grid.  This module turns it into a fuzzing gate: sample
scenario expressions from the grammar (``fuzz:SEED`` names), run each
through both kernels under precharge-heavy policies, and compare
``RunResult.to_dict()`` payloads exactly.  On a mismatch the offending
AST is *shrunk* to a minimal reproducer and written to the committed
regression corpus (``tests/fuzz_corpus/``), which tier-1 replays
forever (``tests/sim/test_fuzz_corpus.py``).

Drive it from the shell (CI runs exactly this)::

    python -m repro fuzz --budget 50 --seed-base 0 --report fuzz.json

Exit status is 1 on any mismatch, 0 on a clean campaign.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .core.registry import PolicySpec
from .sim.config import SimulationConfig
from .sim.engine import execute_run, execute_run_fast
from .workloads.fuzzgen import DEFAULT_FUZZ_DEPTH, generate_scenario
from .workloads.grammar import (
    Bench,
    Group,
    Node,
    default_quantum,
    iter_leaves,
    unparse,
)

__all__ = [
    "DEFAULT_FUZZ_INSTRUCTIONS",
    "FuzzResult",
    "fuzz_config",
    "load_corpus",
    "run_campaign",
    "run_differential",
    "shrink_scenario",
    "write_corpus_entry",
]

#: Instructions per differential run.  Equivalence is binary, not
#: asymptotic; this is long enough to cross several context-switch
#: quanta of every generated scenario (quantum palette tops out at
#: 1500) while keeping a 50-scenario campaign in CI-friendly time.
DEFAULT_FUZZ_INSTRUCTIONS = 2000

#: Default committed-reproducer directory, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests") / "fuzz_corpus"


def fuzz_config(
    benchmark: str,
    n_instructions: int = DEFAULT_FUZZ_INSTRUCTIONS,
    seed: int = 1,
) -> SimulationConfig:
    """The configuration fuzz runs use: every cache level precharge-gated.

    Gated policies at both L1s *and* the L2 maximise the surface where
    the kernels could diverge (precharge penalties folded into miss
    latencies, subarray activation bookkeeping, L2 writeback traffic).
    """
    return SimulationConfig(
        benchmark=benchmark,
        dcache="gated",
        icache="gated",
        l2=PolicySpec("gated", {"threshold": 500}),
        n_instructions=n_instructions,
        seed=seed,
    )


def _outcome(execute: Callable[[SimulationConfig], object], config: SimulationConfig):
    # Both kernels raising the same error (e.g. the livelock bound) is
    # agreement too; one raising while the other returns is a mismatch.
    try:
        return ("ok", execute(config).to_dict())
    except Exception as error:  # pragma: no cover - only on kernel bugs
        return ("error", f"{type(error).__name__}: {error}")


def run_differential(config: SimulationConfig) -> bool:
    """``True`` when both kernels agree bit-for-bit on ``config``."""
    return _outcome(execute_run, config) == _outcome(execute_run_fast, config)


# ----------------------------------------------------------------------
# Shrinking


def _node_simplifications(node: Node) -> Iterator[Node]:
    """Strictly simpler variants of one term, most aggressive first."""
    if isinstance(node, Group):
        # Collapse the whole subtree to its first benchmark leaf.
        first = next(iter_leaves(node))
        yield Bench(name=first.name)
        # Simplify the subtree, keeping this term's own modifiers.
        for simpler in _group_simplifications(
            replace(node, weight=1, scale=1.0, slab=None)
        ):
            yield replace(
                simpler, weight=node.weight, scale=node.scale, slab=node.slab
            )
    if node.weight != 1:
        yield replace(node, weight=1)
    if node.scale != 1.0:
        yield replace(node, scale=1.0)
    if node.slab is not None:
        yield replace(node, slab=None)


def _group_simplifications(root: Group) -> Iterator[Group]:
    """Strictly simpler variants of a whole expression."""
    # Promote a nested scenario to the root.
    for child in root.children:
        if isinstance(child, Group):
            yield replace(child, weight=1, scale=1.0, slab=None)
    # Drop a child (lists need at least two terms).
    if len(root.children) > 2:
        for index in range(len(root.children)):
            yield replace(
                root,
                children=root.children[:index] + root.children[index + 1 :],
            )
    # Simplify one child in place.
    for index, child in enumerate(root.children):
        for simpler in _node_simplifications(child):
            yield replace(
                root,
                children=root.children[:index]
                + (simpler,)
                + root.children[index + 1 :],
            )
    # Reset a non-default quantum.
    if root.quantum != default_quantum(root.family):
        yield replace(root, quantum=default_quantum(root.family))


def shrink_scenario(
    root: Group,
    still_failing: Callable[[Group], bool],
    max_attempts: int = 500,
) -> Group:
    """Greedily minimise a failing expression.

    Repeatedly tries simpler variants (collapse subtrees, drop terms,
    strip modifiers, reset quanta) and keeps the first that still
    satisfies ``still_failing``, until no simplification reproduces or
    ``max_attempts`` candidate evaluations are spent.  The predicate is
    pluggable so the shrinker is testable without a real kernel bug.
    """
    current = root
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _group_simplifications(current):
            attempts += 1
            if still_failing(candidate):
                current = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current


# ----------------------------------------------------------------------
# Corpus


def corpus_filename(canonical: str) -> str:
    """Stable content-addressed filename for one reproducer."""
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return f"repro-{digest}.json"


def write_corpus_entry(
    corpus_dir: Path,
    config: SimulationConfig,
    origin: str,
) -> Path:
    """Persist a minimised reproducer for tier-1 to replay forever.

    The entry is the full ``SimulationConfig.to_dict()`` payload (so the
    replay test rebuilds exactly the failing configuration) plus the
    ``fuzz:`` name that found it, for archaeology.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    entry = {"origin": origin, "config": config.to_dict()}
    path = corpus_dir / corpus_filename(config.benchmark)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Path) -> List[Tuple[str, SimulationConfig]]:
    """Load every committed reproducer as ``(origin, config)`` pairs."""
    corpus_dir = Path(corpus_dir)
    entries: List[Tuple[str, SimulationConfig]] = []
    if not corpus_dir.is_dir():
        return entries
    for path in sorted(corpus_dir.glob("*.json")):
        data = json.loads(path.read_text())
        entries.append(
            (data.get("origin", path.name), SimulationConfig.from_dict(data["config"]))
        )
    return entries


# ----------------------------------------------------------------------
# Campaign


@dataclass
class FuzzResult:
    """Outcome of one fuzzed scenario."""

    name: str
    canonical: str
    matched: bool
    reproducer: Optional[str] = None
    corpus_path: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "canonical": self.canonical,
            "status": "match" if self.matched else "mismatch",
        }
        if self.reproducer is not None:
            payload["reproducer"] = self.reproducer
        if self.corpus_path is not None:
            payload["corpus_path"] = self.corpus_path
        return payload


def run_campaign(
    budget: int,
    seed_base: int = 0,
    depth: int = DEFAULT_FUZZ_DEPTH,
    n_instructions: int = DEFAULT_FUZZ_INSTRUCTIONS,
    workload_seed: int = 1,
    corpus_dir: Optional[Path] = None,
    progress: Optional[Callable[[FuzzResult], None]] = None,
) -> Dict[str, object]:
    """Run ``budget`` seeded scenarios through both kernels.

    Seeds are ``seed_base .. seed_base + budget - 1``, so a fixed
    ``--seed-base`` makes the campaign a regression gate and a rotating
    one makes it an explorer.  Every mismatch is shrunk to a minimal
    reproducer; with ``corpus_dir`` set it is also written there for
    tier-1 to replay.  Returns a JSON-ready report.
    """
    if budget < 1:
        raise ValueError("fuzz budget must be positive")
    results: List[FuzzResult] = []
    for index in range(budget):
        fuzz_seed = seed_base + index
        name = f"fuzz:{fuzz_seed}/{depth}"
        root = generate_scenario(fuzz_seed, depth)
        canonical = unparse(root)
        config = fuzz_config(
            name, n_instructions=n_instructions, seed=workload_seed
        )
        if run_differential(config):
            result = FuzzResult(name=name, canonical=canonical, matched=True)
        else:
            def still_failing(candidate: Group) -> bool:
                return not run_differential(
                    fuzz_config(
                        unparse(candidate),
                        n_instructions=n_instructions,
                        seed=workload_seed,
                    )
                )

            minimal = shrink_scenario(root, still_failing)
            reproducer = unparse(minimal)
            result = FuzzResult(
                name=name, canonical=canonical, matched=False, reproducer=reproducer
            )
            if corpus_dir is not None:
                path = write_corpus_entry(
                    corpus_dir,
                    fuzz_config(
                        reproducer,
                        n_instructions=n_instructions,
                        seed=workload_seed,
                    ),
                    origin=name,
                )
                result.corpus_path = str(path)
        results.append(result)
        if progress is not None:
            progress(result)
    mismatches = sum(1 for result in results if not result.matched)
    return {
        "budget": budget,
        "seed_base": seed_base,
        "depth": depth,
        "n_instructions": n_instructions,
        "workload_seed": workload_seed,
        "mismatches": mismatches,
        "results": [result.to_dict() for result in results],
    }
