"""Tests for the Wattch-style processor energy model and cache energy reports."""

import pytest

from repro.circuits.technology import get_technology
from repro.cpu.stats import PipelineStats
from repro.energy import CacheEnergyReport, WattchEnergyModel, combine_run_energy
from repro.cache.energy_accounting import EnergyLedger
from repro.circuits.cacti import cache_organization


def make_stats(**kwargs):
    defaults = dict(
        cycles=10_000,
        committed_instructions=8_000,
        fetched_instructions=9_000,
        branches=1_500,
        branch_mispredictions=100,
        load_replays=0,
    )
    defaults.update(kwargs)
    return PipelineStats(**defaults)


def make_breakdowns(precharged_cycles=1000, total_cycles=1000):
    org = cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)
    breakdowns = {}
    for name in ("L1D", "L1I"):
        ledger = EnergyLedger(org.subarray, org.n_subarrays)
        for subarray in range(org.n_subarrays):
            ledger.note_precharged_interval(subarray, precharged_cycles)
            if precharged_cycles < total_cycles:
                ledger.note_isolated_interval(subarray, total_cycles - precharged_cycles)
        breakdowns[name] = ledger.breakdown(total_cycles)
    return breakdowns


class TestWattchModel:
    def test_energy_scales_with_activity(self):
        model = WattchEnergyModel(get_technology(70))
        light = model.breakdown(make_stats(committed_instructions=1000, cycles=2000))
        heavy = model.breakdown(make_stats(committed_instructions=8000, cycles=10_000))
        assert heavy.total_j > light.total_j

    def test_energy_scales_down_with_technology(self):
        stats = make_stats()
        old = WattchEnergyModel(get_technology(180)).breakdown(stats)
        new = WattchEnergyModel(get_technology(70)).breakdown(stats)
        assert new.total_j < old.total_j

    def test_clock_energy_always_present(self):
        breakdown = WattchEnergyModel(get_technology(70)).breakdown(make_stats())
        assert breakdown.by_structure["clock"] > 0
        assert 0 < breakdown.fraction("clock") < 1

    def test_replays_add_energy(self):
        model = WattchEnergyModel(get_technology(70))
        clean = model.breakdown(make_stats(load_replays=0))
        replayed = model.breakdown(make_stats(load_replays=2000))
        assert replayed.total_j > clean.total_j

    def test_replay_overhead_small_for_few_replays(self):
        model = WattchEnergyModel(get_technology(70))
        overhead = model.replay_energy_overhead(make_stats(load_replays=50))
        assert 0 <= overhead < 0.01


class TestCacheEnergyReport:
    def test_combine_without_pipeline_stats(self):
        report = combine_run_energy(make_breakdowns(), tech=get_technology(70))
        assert isinstance(report, CacheEnergyReport)
        assert report.processor is None
        assert report.dcache_relative_discharge == pytest.approx(1.0)

    def test_combine_with_pipeline_stats_attaches_processor_energy(self):
        report = combine_run_energy(
            make_breakdowns(), tech=get_technology(70), pipeline_stats=make_stats()
        )
        assert report.processor is not None
        assert report.processor.total_j > 0

    def test_partially_isolated_cache_reports_savings(self):
        report = combine_run_energy(
            make_breakdowns(precharged_cycles=100, total_cycles=10_000),
            tech=get_technology(70),
        )
        assert report.dcache_discharge_savings > 0.5
        assert report.icache_discharge_savings > 0.5
        assert 0 < report.dcache_overall_savings <= report.dcache_discharge_savings + 1e-9

    def test_as_dict_contains_headline_metrics(self):
        report = combine_run_energy(make_breakdowns(), tech=get_technology(70))
        flat = report.as_dict()
        assert set(flat) == {
            "dcache_relative_discharge",
            "icache_relative_discharge",
            "dcache_precharged_fraction",
            "icache_precharged_fraction",
            "dcache_overall_savings",
            "icache_overall_savings",
        }

    def test_total_cache_energy_is_sum_of_both_caches(self):
        report = combine_run_energy(make_breakdowns(), tech=get_technology(70))
        assert report.total_cache_energy_j == pytest.approx(
            report.dcache.total_cache_energy_j + report.icache.total_cache_energy_j
        )
