"""The docs subsystem is executable: doctests run, links resolve.

Two guarantees keep ``docs/`` from rotting:

* every ``>>>`` example in the documentation actually runs (the
  quickstart is a doctest file);
* every relative markdown link in ``README.md`` and ``docs/*.md``
  points at a file that exists (anchors and external URLs are left to
  the reader).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown inline links: [text](target). Images share the syntax.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Documentation pages whose relative links are checked.
_PAGES = [REPO_ROOT / "README.md"] + sorted(DOCS_DIR.glob("*.md"))

#: Documentation pages containing executable examples.
_DOCTEST_PAGES = [
    DOCS_DIR / "quickstart.md",
    DOCS_DIR / "service.md",
    DOCS_DIR / "loadgen.md",
    DOCS_DIR / "scenarios.md",
    DOCS_DIR / "robustness.md",
    DOCS_DIR / "observability.md",
]


def _relative_links(page: Path):
    for match in _LINK_PATTERN.finditer(page.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


def test_docs_directory_is_populated() -> None:
    names = {page.name for page in DOCS_DIR.glob("*.md")}
    assert {
        "architecture.md",
        "workloads.md",
        "experiments.md",
        "quickstart.md",
        "performance.md",
        "service.md",
        "loadgen.md",
        "scenarios.md",
        "robustness.md",
    } <= names


@pytest.mark.parametrize("page", _PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page: Path) -> None:
    missing = []
    for target in _relative_links(page):
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (page.parent / path).exists():
            missing.append(target)
    assert not missing, f"{page.name}: broken relative link(s): {missing}"


@pytest.mark.parametrize("page", _DOCTEST_PAGES, ids=lambda p: p.name)
def test_documentation_examples_execute(page: Path) -> None:
    result = doctest.testfile(
        str(page),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert result.attempted > 0, f"{page.name} contains no doctests"
    assert result.failed == 0, f"{page.name}: {result.failed} doctest(s) failed"


def test_experiments_doc_covers_every_registered_experiment() -> None:
    # The docs promise a catalogue; a new experiment must appear in it.
    from repro.experiments.registry import experiment_names

    text = (DOCS_DIR / "experiments.md").read_text(encoding="utf-8")
    missing = [name for name in experiment_names() if f"`{name}`" not in text]
    assert not missing, f"docs/experiments.md lacks experiments: {missing}"


def test_workloads_doc_covers_every_benchmark() -> None:
    from repro.workloads.characteristics import benchmark_names

    text = (DOCS_DIR / "workloads.md").read_text(encoding="utf-8")
    missing = [name for name in benchmark_names() if f"`{name}`" not in text]
    assert not missing, f"docs/workloads.md lacks benchmarks: {missing}"
