"""Edge-case tests for the policy-controlled L2 in the memory hierarchy.

The L2 became a first-class policy-controlled cache: it accepts the same
precharge controllers as the L1s, sees L1 fill *and* writeback traffic,
and reports its own energy breakdown.  These tests pin the corner cases:
dirty-eviction writeback propagation (L1 -> L2 -> memory), MSHR
occupancy bounds at the L2, and policy wake-up on L2 fills after idle.
"""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core import GatedPrechargePolicy, OnDemandPrechargePolicy


def _l1d_conflict_addresses(hierarchy, base, count):
    """Addresses conflicting with ``base`` in the same L1D set."""
    n_sets = hierarchy.l1d.organization.n_sets
    line = hierarchy.l1d.organization.line_bytes
    return [base + i * n_sets * line for i in range(1, count + 1)]


class TestWritebackPropagation:
    def test_dirty_l1_eviction_writes_back_into_l2(self):
        hierarchy = MemoryHierarchy()
        base = 0x40000
        hierarchy.store(base, cycle=0)
        for cycle, address in enumerate(
            _l1d_conflict_addresses(hierarchy, base, 2), start=1
        ):
            result = hierarchy.load(address, cycle=cycle * 10)
        assert result.writeback
        assert hierarchy.l1d.writebacks == 1
        # Three fills plus the writeback reached the L2; the writeback is
        # the only L2 hit (the line was just filled there).
        assert hierarchy.l2.accesses == 4
        assert hierarchy.l2.hits == 1

    def test_clean_l1_eviction_does_not_touch_l2(self):
        hierarchy = MemoryHierarchy()
        base = 0x50000
        hierarchy.load(base, cycle=0)
        for cycle, address in enumerate(
            _l1d_conflict_addresses(hierarchy, base, 2), start=1
        ):
            hierarchy.load(address, cycle=cycle * 10)
        assert hierarchy.l1d.writebacks == 0
        # Only the three fills reached the L2 — no writeback traffic.
        assert hierarchy.l2.accesses == 3

    def test_dirty_l2_eviction_counts_l2_writeback(self):
        hierarchy = MemoryHierarchy()
        base = 0x40000
        # Make the L2 copy of `base` dirty via an L1 writeback.
        hierarchy.store(base, cycle=0)
        for cycle, address in enumerate(
            _l1d_conflict_addresses(hierarchy, base, 2), start=1
        ):
            hierarchy.load(address, cycle=cycle * 10)
        assert hierarchy.l2.writebacks == 0
        # Now evict `base` from the L2 by filling its (4-way) set.
        l2_sets = hierarchy.l2.organization.n_sets
        l2_line = hierarchy.l2.organization.line_bytes
        before = hierarchy.memory.requests
        for i in range(1, 5):
            hierarchy.load(base + i * l2_sets * l2_line, cycle=1000 + i * 10)
        assert hierarchy.l2.writebacks == 1
        # The dirty victim drained to memory as a write request on top of
        # the four fills.
        assert hierarchy.memory.requests == before + 5

    def test_writeback_latency_stays_off_the_critical_path(self):
        hierarchy = MemoryHierarchy()
        base = 0x40000
        hierarchy.load(base, cycle=0)
        clean = hierarchy.load(
            _l1d_conflict_addresses(hierarchy, base, 2)[1], cycle=10
        )
        dirty_hierarchy = MemoryHierarchy()
        dirty_hierarchy.store(base, cycle=0)
        dirty = dirty_hierarchy.load(
            _l1d_conflict_addresses(dirty_hierarchy, base, 2)[1], cycle=10
        )
        # Same miss path; the extra writeback does not add latency.
        assert dirty.latency == clean.latency


class TestL2MSHROccupancy:
    def test_l2_mshrs_saturate_and_stall_cleanly(self):
        hierarchy = MemoryHierarchy()
        capacity = hierarchy.l2.mshrs.capacity
        l1_line = hierarchy.l1i.organization.line_bytes
        n_sets = hierarchy.l1i.organization.n_sets
        # Distinct lines in distinct L1 sets, all missing everywhere and
        # all issued at the same cycle: more outstanding L2 fills than
        # MSHR entries.
        for i in range(capacity + 1):
            hierarchy.fetch_instruction(i * (n_sets // 16) * l1_line, cycle=0)
        assert hierarchy.l2.mshrs.occupancy <= capacity
        assert hierarchy.l2.mshrs.rejected_allocations >= 1

    def test_rejected_l2_allocation_inflates_miss_latency(self):
        hierarchy = MemoryHierarchy()
        capacity = hierarchy.l2.mshrs.capacity
        l1_line = hierarchy.l1i.organization.line_bytes
        n_sets = hierarchy.l1i.organization.n_sets
        results = [
            hierarchy.fetch_instruction(i * (n_sets // 16) * l1_line, cycle=0)
            for i in range(capacity + 1)
        ]
        # The overflowing miss waits for an entry to free before its fill
        # can even start, so it is strictly slower than the first miss.
        assert results[-1].latency > results[0].latency


class TestL2PolicyWake:
    def test_gated_l2_pays_wakeup_penalty_after_idle(self):
        hierarchy = MemoryHierarchy(
            l2_controller=GatedPrechargePolicy(threshold=100)
        )
        base = 0x10000
        hierarchy.load(base, cycle=0)
        # Evict from the L1 (clean) so the next load must re-probe the L2.
        for cycle, address in enumerate(
            _l1d_conflict_addresses(hierarchy, base, 2), start=1
        ):
            hierarchy.load(address, cycle=cycle)
        assert hierarchy.l2.precharge_penalties == 0
        # A fresh primary miss retires the stale L1 MSHR entries, so the
        # reload below is a primary miss that re-probes the L2.  It lands
        # on a never-touched L2 subarray, idle since cycle 0, so it pays
        # a wake-up itself.
        hierarchy.load(base + 3 * 0x4000, cycle=3000)
        assert hierarchy.l2.precharge_penalties == 1
        again = hierarchy.load(base, cycle=5000)
        # The L2 subarray decayed during the idle gap: the L2 hit wakes
        # it and pays the pull-up cycle, which the L1 miss path surfaces.
        assert hierarchy.l2.precharge_penalties == 2
        assert not again.hit
        assert again.latency == (
            hierarchy.l1d.base_latency + hierarchy.l2.base_latency + 1
        )

    def test_on_demand_l2_delays_every_l2_access_only(self):
        hierarchy = MemoryHierarchy(l2_controller=OnDemandPrechargePolicy())
        base = 0x20000
        miss = hierarchy.load(base, cycle=0)
        assert hierarchy.l2.precharge_penalties == 1
        assert miss.precharge_penalty == 0  # the L1 itself is static
        hit = hierarchy.load(base, cycle=10)
        # L1 hits never reach the L2, so no further penalty accrues.
        assert hit.hit
        assert hierarchy.l2.precharge_penalties == 1

    def test_l2_finalize_reports_policy_energy(self):
        hierarchy = MemoryHierarchy(
            l2_controller=GatedPrechargePolicy(threshold=100)
        )
        for i in range(32):
            hierarchy.load(0x1000 + i * 0x4000, cycle=i * 400)
        breakdowns = hierarchy.finalize(end_cycle=100_000)
        l2 = breakdowns["L2"]
        # Long-idle subarrays were isolated: discharge well below static.
        assert 0.0 < l2.relative_discharge < 1.0
        assert l2.precharged_fraction < 1.0


class TestL2Organisation:
    def test_default_l2_granularity_scales_up_from_l1(self):
        config = HierarchyConfig(subarray_bytes=1024)
        assert config.effective_l2_subarray_bytes == 4096
        assert config.l2_organization().n_subarrays == 512 * 1024 // 4096

    def test_large_l1_granularity_carries_over(self):
        config = HierarchyConfig(subarray_bytes=8192)
        assert config.effective_l2_subarray_bytes == 8192

    def test_explicit_l2_granularity_wins(self):
        config = HierarchyConfig(subarray_bytes=1024, l2_subarray_bytes=16384)
        assert config.l2_organization().n_subarrays == 512 * 1024 // 16384

    def test_invalid_l2_granularity_is_rejected(self):
        config = HierarchyConfig(l2_subarray_bytes=3000)  # not a divisor
        with pytest.raises(ValueError):
            config.l2_organization()
