"""Tests for the bitline-discharge energy ledger."""

import pytest

from repro.cache.energy_accounting import EnergyLedger


class TestLedgerAccounting:
    def test_fully_precharged_run_matches_static_reference(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        total_cycles = 1000
        for subarray in range(l1_org.n_subarrays):
            ledger.note_precharged_interval(subarray, total_cycles)
        breakdown = ledger.breakdown(total_cycles)
        assert breakdown.relative_discharge == pytest.approx(1.0)
        assert breakdown.precharged_fraction == pytest.approx(1.0)
        assert breakdown.discharge_savings == pytest.approx(0.0)

    def test_fully_isolated_run_saves_most_discharge(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        total_cycles = 100_000
        for subarray in range(l1_org.n_subarrays):
            ledger.note_isolated_interval(subarray, total_cycles)
        breakdown = ledger.breakdown(total_cycles)
        assert breakdown.relative_discharge < 0.1
        assert breakdown.precharged_fraction == pytest.approx(0.0)

    def test_toggles_add_overhead(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        ledger.note_precharged_interval(0, 100)
        without = ledger.breakdown(100).bitline_discharge_j
        for _ in range(50):
            ledger.note_toggle(0)
        with_toggles = ledger.breakdown(100).bitline_discharge_j
        assert with_toggles > without
        assert ledger.toggles == 50

    def test_accesses_counted_as_dynamic_energy(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        ledger.note_access(0)
        ledger.note_access(1)
        breakdown = ledger.breakdown(10)
        assert ledger.accesses == 2
        assert breakdown.dynamic_access_j == pytest.approx(
            2 * l1_org.subarray.read_access_energy_j
        )

    def test_overall_savings_between_zero_and_one(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        for subarray in range(l1_org.n_subarrays):
            ledger.note_isolated_interval(subarray, 5000)
            ledger.note_access(subarray)
        breakdown = ledger.breakdown(5000)
        assert 0.0 <= breakdown.overall_energy_savings <= 1.0
        assert breakdown.overall_energy_savings < breakdown.discharge_savings

    def test_isolated_interval_never_exceeds_static_equivalent(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        cycles = 123
        ledger.note_isolated_interval(0, cycles)
        isolated = ledger.breakdown(cycles).isolated_discharge_j
        static = l1_org.subarray.static_discharge_energy_per_cycle_j * cycles
        assert isolated <= static * 1.0001

    def test_short_isolation_is_nearly_free_of_savings(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        ledger.note_isolated_interval(0, 1)
        isolated = ledger.breakdown(1).isolated_discharge_j
        static = l1_org.subarray.static_discharge_energy_per_cycle_j
        assert isolated == pytest.approx(static, rel=0.05)

    def test_invalid_inputs_rejected(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        with pytest.raises(ValueError):
            ledger.note_precharged_interval(0, -1)
        with pytest.raises(ValueError):
            ledger.note_isolated_interval(0, -1)
        with pytest.raises(ValueError):
            ledger.breakdown(0)
        with pytest.raises(ValueError):
            EnergyLedger(l1_org.subarray, 0)

    def test_breakdown_totals_are_consistent(self, l1_org):
        ledger = EnergyLedger(l1_org.subarray, l1_org.n_subarrays)
        ledger.note_precharged_interval(0, 500)
        ledger.note_isolated_interval(1, 500)
        ledger.note_toggle(1)
        ledger.note_access(0)
        breakdown = ledger.breakdown(500)
        assert breakdown.bitline_discharge_j == pytest.approx(
            breakdown.precharged_discharge_j
            + breakdown.isolated_discharge_j
            + breakdown.toggle_overhead_j
        )
        assert breakdown.total_cache_energy_j == pytest.approx(
            breakdown.bitline_discharge_j + breakdown.dynamic_access_j
        )
