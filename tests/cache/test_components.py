"""Tests for cache lines, replacement policies, MSHRs and subarray tracking."""

import pytest

from repro.cache.block import CacheLine
from repro.cache.mshr import MSHRFile
from repro.cache.replacement import (
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.cache.subarray import SubarrayStats, SubarrayTracker


class TestCacheLine:
    def test_new_line_is_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert not line.matches(0)

    def test_fill_and_match(self):
        line = CacheLine()
        line.fill(tag=0x42, cycle=10)
        assert line.valid and not line.dirty
        assert line.matches(0x42)
        assert not line.matches(0x43)

    def test_touch_marks_dirty_on_write(self):
        line = CacheLine()
        line.fill(tag=1, cycle=0)
        line.touch(cycle=5, write=True)
        assert line.dirty
        assert line.last_used_cycle == 5

    def test_invalidate_clears_state(self):
        line = CacheLine()
        line.fill(tag=1, cycle=0)
        line.touch(cycle=1, write=True)
        line.invalidate()
        assert not line.valid and not line.dirty and line.tag is None


class TestReplacement:
    def _ways(self, n=4):
        ways = [CacheLine() for _ in range(n)]
        for index, way in enumerate(ways):
            way.fill(tag=index, cycle=index)
        return ways

    def test_lru_prefers_invalid_way(self):
        ways = self._ways()
        ways[2].invalidate()
        assert LRUReplacement().select_victim(ways) == 2

    def test_lru_picks_least_recently_used(self):
        ways = self._ways()
        ways[0].touch(cycle=100)
        assert LRUReplacement().select_victim(ways) == 1

    def test_random_prefers_invalid_way(self):
        ways = self._ways()
        ways[3].invalidate()
        assert RandomReplacement(seed=1).select_victim(ways) == 3

    def test_random_is_deterministic_given_seed(self):
        ways = self._ways()
        picks_a = [RandomReplacement(seed=7).select_victim(ways) for _ in range(5)]
        picks_b = [RandomReplacement(seed=7).select_victim(ways) for _ in range(5)]
        assert picks_a == picks_b

    def test_factory(self):
        assert isinstance(make_replacement("lru"), LRUReplacement)
        assert isinstance(make_replacement("RANDOM"), RandomReplacement)
        with pytest.raises(ValueError):
            make_replacement("plru")


class TestMSHRs:
    def test_allocate_until_full(self):
        mshrs = MSHRFile(n_entries=2)
        assert mshrs.allocate(0x100, ready_cycle=10) is not None
        assert mshrs.allocate(0x200, ready_cycle=20) is not None
        assert mshrs.is_full()
        assert mshrs.allocate(0x300, ready_cycle=30) is None
        assert mshrs.rejected_allocations == 1

    def test_secondary_miss_merges(self):
        mshrs = MSHRFile(n_entries=2)
        first = mshrs.allocate(0x100, ready_cycle=10)
        second = mshrs.allocate(0x100, ready_cycle=15)
        assert first is second
        assert second.merged_requests == 2
        assert mshrs.merged_misses == 1
        assert mshrs.occupancy == 1

    def test_retire_completed_frees_entries(self):
        mshrs = MSHRFile(n_entries=2)
        mshrs.allocate(0x100, ready_cycle=10)
        mshrs.allocate(0x200, ready_cycle=50)
        done = mshrs.retire_completed(cycle=20)
        assert [e.line_address for e in done] == [0x100]
        assert mshrs.occupancy == 1
        assert mshrs.earliest_ready_cycle() == 50

    def test_empty_file_has_no_ready_cycle(self):
        assert MSHRFile().earliest_ready_cycle() is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(n_entries=0)


class TestSubarrayTracker:
    def test_gap_recording(self):
        stats = SubarrayStats(index=0)
        assert stats.record_access(10) is None
        assert stats.record_access(25) == 15
        assert stats.accesses == 2
        assert stats.mean_gap_cycles == 15

    def test_mean_frequency_is_reciprocal(self):
        stats = SubarrayStats(index=0)
        stats.record_access(0)
        stats.record_access(100)
        assert stats.mean_access_frequency == pytest.approx(0.01)

    def test_never_accessed_subarray_has_zero_frequency(self):
        stats = SubarrayStats(index=0)
        assert stats.mean_gap_cycles == float("inf")
        assert stats.mean_access_frequency == 0.0

    def test_tracker_distributes_accesses(self):
        tracker = SubarrayTracker(4)
        for cycle, subarray in enumerate([0, 1, 0, 1, 2, 0]):
            tracker.record_access(subarray, cycle * 10)
        assert tracker.total_accesses == 6
        assert tracker.per_subarray_access_counts() == [3, 2, 1, 0]

    def test_cumulative_access_fraction_monotone(self):
        tracker = SubarrayTracker(2)
        for cycle in range(0, 1000, 7):
            tracker.record_access(cycle % 2, cycle)
        fractions = tracker.cumulative_access_fraction([1, 10, 100, 1000])
        values = [fractions[t] for t in (1, 10, 100, 1000)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_hot_fraction_monotone_in_threshold(self):
        tracker = SubarrayTracker(8)
        for cycle in range(0, 2000, 5):
            tracker.record_access((cycle // 100) % 8, cycle)
        hot = tracker.hot_subarray_fraction([10, 100, 1000], total_cycles=2000)
        assert hot[10] <= hot[100] <= hot[1000] <= 1.0

    def test_hot_fraction_requires_positive_cycles(self):
        tracker = SubarrayTracker(2)
        with pytest.raises(ValueError):
            tracker.hot_subarray_fraction([10], total_cycles=0)

    def test_invalid_tracker_size_rejected(self):
        with pytest.raises(ValueError):
            SubarrayTracker(0)
