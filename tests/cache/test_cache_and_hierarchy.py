"""Tests for the set-associative cache and the memory hierarchy."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import HierarchyConfig, MainMemory, MemoryHierarchy
from repro.circuits.cacti import cache_organization
from repro.core import GatedPrechargePolicy, OnDemandPrechargePolicy, StaticPullUpPolicy


def make_cache(**kwargs):
    org = cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)
    defaults = dict(organization=org, name="L1D", miss_latency=12, base_latency=3)
    defaults.update(kwargs)
    return SetAssociativeCache(**defaults)


class TestBasicCaching:
    def test_miss_then_hit_on_same_line(self):
        cache = make_cache()
        first = cache.access(0x1000, cycle=0)
        second = cache.access(0x1004, cycle=10)
        assert not first.hit and second.hit
        assert cache.accesses == 2 and cache.hits == 1 and cache.misses == 1

    def test_miss_latency_added(self):
        cache = make_cache()
        miss = cache.access(0x2000, cycle=0)
        hit = cache.access(0x2000, cycle=5)
        assert miss.latency == cache.base_latency + cache.miss_latency
        assert hit.latency == cache.base_latency

    def test_associativity_keeps_two_conflicting_lines(self):
        cache = make_cache()
        n_sets = cache.organization.n_sets
        line = cache.organization.line_bytes
        a, b = 0x10000, 0x10000 + n_sets * line
        cache.access(a, cycle=0)
        cache.access(b, cycle=1)
        assert cache.access(a, cycle=2).hit
        assert cache.access(b, cycle=3).hit

    def test_third_conflicting_line_evicts_lru(self):
        cache = make_cache()
        n_sets = cache.organization.n_sets
        line = cache.organization.line_bytes
        addresses = [0x10000 + i * n_sets * line for i in range(3)]
        for cycle, address in enumerate(addresses):
            cache.access(address, cycle=cycle)
        # The oldest (first) line was evicted by the third.
        assert not cache.access(addresses[0], cycle=10).hit

    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache()
        n_sets = cache.organization.n_sets
        line = cache.organization.line_bytes
        base = 0x40000
        cache.access(base, cycle=0, write=True)
        cache.access(base + n_sets * line, cycle=1)
        result = cache.access(base + 2 * n_sets * line, cycle=2)
        assert result.writeback
        assert cache.writebacks == 1

    def test_miss_ratio(self):
        cache = make_cache()
        for i in range(8):
            cache.access(0x5000 + i * 4, cycle=i)
        assert cache.miss_ratio == pytest.approx(1 / 8)

    def test_accesses_map_to_expected_subarray(self):
        cache = make_cache()
        result = cache.access(0x0, cycle=0)
        assert result.subarray == cache.organization.subarray_for_address(0x0)


class TestPrechargeIntegration:
    def test_static_controller_never_delays(self):
        cache = make_cache(controller=StaticPullUpPolicy())
        for i in range(50):
            result = cache.access(0x1000 + 64 * i, cycle=i * 3)
            assert result.precharge_penalty == 0
        assert cache.precharge_penalties == 0

    def test_on_demand_delays_every_access(self):
        cache = make_cache(controller=OnDemandPrechargePolicy())
        for i in range(10):
            result = cache.access(0x1000, cycle=i * 5)
            assert result.precharge_penalty >= 1
        assert cache.precharge_penalties == 10

    def test_gated_delays_only_after_long_idle(self):
        cache = make_cache(controller=GatedPrechargePolicy(threshold=100))
        warm = cache.access(0x1000, cycle=0)
        soon = cache.access(0x1000, cycle=50)
        late = cache.access(0x1000, cycle=500)
        assert soon.precharge_penalty == 0
        assert late.precharge_penalty >= 1

    def test_finalize_produces_energy_breakdown(self):
        cache = make_cache(controller=GatedPrechargePolicy(threshold=100))
        for i in range(100):
            cache.access(0x1000 + 32 * (i % 16), cycle=i * 7)
        breakdown = cache.finalize(end_cycle=1000)
        assert 0.0 < breakdown.relative_discharge <= 1.0
        assert 0.0 < breakdown.precharged_fraction <= 1.0

    def test_default_controller_is_static_pull_up(self):
        cache = make_cache()
        breakdown = cache.finalize(end_cycle=100)
        assert breakdown.relative_discharge == pytest.approx(1.0)


class TestMainMemoryAndHierarchy:
    def test_memory_line_fill_latency_matches_table2(self):
        memory = MainMemory(base_latency=100, cycles_per_8_bytes=4, line_bytes=32)
        assert memory.line_fill_latency == 100 + 4 * 4

    def test_hierarchy_uses_table2_latencies(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.l1i.base_latency == 2
        assert hierarchy.l1d.base_latency == 3
        assert hierarchy.l2.base_latency == 12

    def test_l1_miss_goes_to_l2_then_memory(self):
        hierarchy = MemoryHierarchy()
        cold = hierarchy.load(0x8000_0000, cycle=0)
        assert not cold.hit
        # A cold L1 miss also misses in L2 and pays the memory latency.
        assert cold.latency >= hierarchy.memory.line_fill_latency
        warm = hierarchy.load(0x8000_0000, cycle=500)
        assert warm.hit and warm.latency == hierarchy.l1d.base_latency

    def test_l2_hit_is_cheaper_than_memory(self):
        hierarchy = MemoryHierarchy()
        address = 0x9000_0000
        hierarchy.load(address, cycle=0)
        # Evict from L1 by filling its set with conflicting lines.
        n_sets = hierarchy.l1d.organization.n_sets
        line = hierarchy.l1d.organization.line_bytes
        for i in range(1, 3):
            hierarchy.load(address + i * n_sets * line, cycle=i * 10)
        again = hierarchy.load(address, cycle=1000)
        assert not again.hit
        assert again.latency < hierarchy.memory.line_fill_latency

    def test_instruction_and_data_paths_are_separate_caches(self):
        hierarchy = MemoryHierarchy()
        hierarchy.fetch_instruction(0x400000, cycle=0)
        hierarchy.load(0x400000, cycle=1)
        assert hierarchy.l1i.accesses == 1
        assert hierarchy.l1d.accesses == 1

    def test_finalize_returns_every_level_breakdown(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000, cycle=0)
        hierarchy.fetch_instruction(0x400000, cycle=0)
        breakdowns = hierarchy.finalize(end_cycle=100)
        assert set(breakdowns) == {"L1I", "L1D", "L2"}

    def test_config_organizations_match_sizes(self):
        config = HierarchyConfig(subarray_bytes=1024)
        assert config.l1d_organization().n_subarrays == 32
        assert config.l1i_organization().n_subarrays == 32
        assert config.l2_organization().capacity_bytes == 512 * 1024
