"""Tests for the CPU building blocks: predictor, rename, ROB, IQ, LSQ, replay."""

import random

import pytest

from repro.cpu.branch_predictor import CombinationPredictor, TwoBitCounter
from repro.cpu.issue_queue import IssueQueue
from repro.cpu.load_speculation import LoadHitSpeculation
from repro.cpu.lsq import LoadStoreQueue
from repro.cpu.regfile import RenameTable
from repro.cpu.rob import InFlightOp, ReorderBuffer
from repro.workloads.trace import MicroOp, OP_ALU, OP_LOAD, OP_STORE


def make_op(sequence=0, op_type=OP_ALU, dest=1, src1=None, src2=None,
            address=None, dispatched=0):
    uop = MicroOp(op_type=op_type, pc=0x1000 + 4 * sequence, dest=dest,
                  src1=src1, src2=src2, address=address)
    return InFlightOp(uop=uop, sequence=sequence, dispatched_cycle=dispatched)


class TestTwoBitCounter:
    def test_default_is_weakly_not_taken(self):
        assert not TwoBitCounter().taken

    def test_trains_towards_taken(self):
        counter = TwoBitCounter()
        counter.update(True)
        counter.update(True)
        assert counter.taken

    def test_saturates(self):
        counter = TwoBitCounter(3)
        counter.update(True)
        assert counter.value == 3
        for _ in range(5):
            counter.update(False)
        assert counter.value == 0

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            TwoBitCounter(4)


class TestCombinationPredictor:
    def test_learns_strongly_biased_branches(self):
        predictor = CombinationPredictor()
        for _ in range(200):
            predictor.update(0x4000, True)
        assert predictor.predict(0x4000) is True
        assert predictor.stats.accuracy > 0.95

    def test_learns_per_pc_biases(self):
        predictor = CombinationPredictor()
        rng = random.Random(0)
        biases = {0x1000 + 4 * i: (i % 2 == 0) for i in range(64)}
        correct = total = 0
        for _ in range(20_000):
            pc = rng.choice(list(biases))
            if predictor.update(pc, biases[pc]):
                correct += 1
            total += 1
        assert correct / total > 0.9

    def test_gshare_learns_alternating_pattern(self):
        predictor = CombinationPredictor()
        outcome = True
        hits = 0
        for i in range(2000):
            outcome = not outcome
            if predictor.update(0x2000, outcome):
                hits += 1
        # A global-history component should do far better than 50% here.
        assert hits / 2000 > 0.8

    def test_too_small_tables_rejected(self):
        with pytest.raises(ValueError):
            CombinationPredictor(table_bits=2)


class TestRenameTable:
    def test_tracks_latest_writer(self):
        table = RenameTable(8)
        op_a = make_op(sequence=0, dest=3)
        op_b = make_op(sequence=1, dest=3)
        table.set_writer(3, op_a)
        table.set_writer(3, op_b)
        assert table.writer(3) is op_b

    def test_none_register_has_no_writer(self):
        table = RenameTable(8)
        assert table.writer(None) is None
        table.set_writer(None, make_op())
        assert table.writer(None) is None

    def test_reset_clears_writers(self):
        table = RenameTable(8)
        table.set_writer(1, make_op())
        table.reset()
        assert table.writer(1) is None


class TestReorderBuffer:
    def test_commits_in_order_only(self):
        rob = ReorderBuffer(capacity=4)
        first, second = make_op(0), make_op(1)
        rob.push(first)
        rob.push(second)
        second.complete_cycle = 5
        assert rob.commit_ready(cycle=10, width=4) == 0  # head not complete
        first.complete_cycle = 8
        assert rob.commit_ready(cycle=10, width=4) == 2

    def test_commit_respects_width(self):
        rob = ReorderBuffer(capacity=8)
        ops = [make_op(i) for i in range(6)]
        for op in ops:
            op.complete_cycle = 1
            rob.push(op)
        assert rob.commit_ready(cycle=5, width=4) == 4
        assert rob.commit_ready(cycle=5, width=4) == 2

    def test_full_rob_rejects_push(self):
        rob = ReorderBuffer(capacity=1)
        rob.push(make_op(0))
        assert rob.is_full
        with pytest.raises(RuntimeError):
            rob.push(make_op(1))


class TestIssueQueue:
    def test_selects_oldest_ready_first(self):
        queue = IssueQueue(capacity=8)
        ops = [make_op(i) for i in range(4)]
        for op in ops:
            queue.push(op)
        ready = {0: 0, 1: 100, 2: 0, 3: 0}
        selected = queue.select_ready(
            cycle=0, width=2,
            ready_cycle_of=lambda op: ready[op.sequence],
            memory_ports=4, is_memory=lambda op: False,
        )
        assert [op.sequence for op in selected] == [0, 2]
        assert len(queue) == 2

    def test_memory_port_limit_enforced(self):
        queue = IssueQueue(capacity=8)
        for i in range(4):
            queue.push(make_op(i, op_type=OP_LOAD, address=0x100 * i))
        selected = queue.select_ready(
            cycle=0, width=8,
            ready_cycle_of=lambda op: 0,
            memory_ports=2, is_memory=lambda op: op.uop.is_memory,
        )
        assert len(selected) == 2

    def test_dependents_of_matches_producer_reference(self):
        queue = IssueQueue(capacity=8)
        producer = make_op(0, dest=5)
        consumer = make_op(1, src1=5)
        consumer.producer1 = producer
        unrelated = make_op(2, src1=5)  # same register, different producer
        queue.push(consumer)
        queue.push(unrelated)
        assert queue.dependents_of(producer) == [consumer]
        assert queue.dependents_of(None) == []

    def test_reinsert_keeps_age_order(self):
        queue = IssueQueue(capacity=8)
        queue.push(make_op(5))
        early = make_op(2)
        queue.reinsert(early)
        selected = queue.select_ready(
            cycle=0, width=1, ready_cycle_of=lambda op: 0,
            memory_ports=4, is_memory=lambda op: False,
        )
        assert selected[0].sequence == 2

    def test_full_queue_rejects_push(self):
        queue = IssueQueue(capacity=1)
        queue.push(make_op(0))
        with pytest.raises(RuntimeError):
            queue.push(make_op(1))


class TestLoadStoreQueue:
    def test_store_to_load_forwarding(self):
        lsq = LoadStoreQueue(capacity=8)
        store = make_op(0, op_type=OP_STORE, address=0x1000)
        lsq.insert(store, line_address=0x40)
        assert lsq.can_forward(load_sequence=5, line_address=0x40)
        assert not lsq.can_forward(load_sequence=5, line_address=0x41)

    def test_younger_store_does_not_forward(self):
        lsq = LoadStoreQueue(capacity=8)
        lsq.insert(make_op(10, op_type=OP_STORE, address=0x1000), line_address=0x40)
        assert not lsq.can_forward(load_sequence=5, line_address=0x40)

    def test_retirement_frees_entries(self):
        lsq = LoadStoreQueue(capacity=2)
        lsq.insert(make_op(0, op_type=OP_LOAD, address=0x0), line_address=0)
        lsq.insert(make_op(1, op_type=OP_LOAD, address=0x40), line_address=1)
        assert lsq.is_full
        lsq.retire_older_than(2)
        assert lsq.occupancy() == 0


class TestLoadHitSpeculation:
    def test_hit_within_speculative_latency_is_not_a_misprediction(self):
        spec = LoadHitSpeculation(speculative_latency=3)
        queue = IssueQueue()
        load = make_op(0, op_type=OP_LOAD, address=0x100)
        ready = spec.resolve_load(load, issue_cycle=10, actual_latency=3, issue_queue=queue)
        assert ready == 13
        assert spec.stats.mispredicted_loads == 0

    def test_slow_load_replays_dependents(self):
        spec = LoadHitSpeculation(speculative_latency=3)
        queue = IssueQueue()
        load = make_op(0, op_type=OP_LOAD, dest=7, address=0x100)
        dependent = make_op(1, src1=7)
        dependent.producer1 = load
        queue.push(dependent)
        ready = spec.resolve_load(load, issue_cycle=10, actual_latency=4, issue_queue=queue)
        assert ready == 14
        assert spec.stats.mispredicted_loads == 1
        assert spec.stats.replayed_uops == 1
        assert dependent.replayed == 1

    def test_misprediction_rate(self):
        spec = LoadHitSpeculation(speculative_latency=3)
        queue = IssueQueue()
        for latency in (3, 3, 5, 3):
            spec.resolve_load(make_op(op_type=OP_LOAD, address=0), 0, latency, queue)
        assert spec.stats.misprediction_rate == pytest.approx(0.25)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            LoadHitSpeculation(speculative_latency=0)
