"""Tests for the integrated out-of-order pipeline model."""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core import OnDemandPrechargePolicy, StaticPullUpPolicy
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineConfig
from repro.workloads.trace import MicroOp, OP_ALU, OP_BRANCH, OP_LOAD


def alu_stream(n, chain=False):
    """Independent or chained ALU ops looping over a small (cached) code region."""
    ops = []
    for i in range(n):
        src = (i - 1) % 64 if chain and i > 0 else None
        ops.append(
            MicroOp(op_type=OP_ALU, pc=0x1000 + 4 * (i % 64), dest=i % 64, src1=src)
        )
    return iter(ops)


def load_chain_stream(n, stride=0):
    """Loads each feeding the next load's address computation."""
    ops = []
    for i in range(n):
        ops.append(
            MicroOp(
                op_type=OP_LOAD,
                pc=0x1000 + 4 * i,
                dest=(i % 32) + 1,
                src1=(i % 32) if i > 0 else None,
                address=0x2000_0000 + i * stride,
                base_address=0x2000_0000 + i * stride,
            )
        )
    return iter(ops)


def make_pipeline(stream, **config_kwargs):
    hierarchy = MemoryHierarchy(
        HierarchyConfig(),
        icache_controller=StaticPullUpPolicy(),
        dcache_controller=StaticPullUpPolicy(),
    )
    return OutOfOrderPipeline(hierarchy, stream, PipelineConfig(**config_kwargs))


class TestBasicExecution:
    def test_commits_exactly_requested_instructions(self):
        pipeline = make_pipeline(alu_stream(500))
        stats = pipeline.run(400)
        assert stats.committed_instructions >= 400
        assert stats.cycles > 0

    def test_independent_alu_ops_achieve_high_ipc(self):
        # Long enough that the compulsory i-cache misses are amortised.
        pipeline = make_pipeline(alu_stream(4000))
        stats = pipeline.run(4000)
        assert stats.ipc > 2.0

    def test_dependent_chain_limits_ipc_to_about_one(self):
        pipeline = make_pipeline(alu_stream(4000, chain=True))
        stats = pipeline.run(4000)
        assert stats.ipc < 1.5

    def test_dependent_chain_is_slower_than_independent_ops(self):
        independent = make_pipeline(alu_stream(4000)).run(4000)
        chained = make_pipeline(alu_stream(4000, chain=True)).run(4000)
        assert chained.cycles > independent.cycles

    def test_stream_exhaustion_terminates_cleanly(self):
        pipeline = make_pipeline(alu_stream(100))
        stats = pipeline.run(10_000)
        assert stats.committed_instructions == 100

    def test_invalid_instruction_count_rejected(self):
        pipeline = make_pipeline(alu_stream(10))
        with pytest.raises(ValueError):
            pipeline.run(0)


class TestMemoryBehaviour:
    def test_loads_access_the_data_cache(self):
        pipeline = make_pipeline(load_chain_stream(200, stride=8))
        stats = pipeline.run(200)
        assert stats.dcache_access_count == 200
        assert pipeline.hierarchy.l1d.accesses == 200

    def test_dependent_load_chain_is_bounded_by_load_latency(self):
        pipeline = make_pipeline(load_chain_stream(300, stride=0))
        stats = pipeline.run(300)
        # Every load depends on the previous one, so at least the L1D
        # latency elapses per instruction.
        assert stats.cycles >= 300 * pipeline.hierarchy.l1d.base_latency * 0.8

    def test_cache_misses_trigger_load_replays(self):
        # Large stride: every load misses and exceeds the speculative latency.
        pipeline = make_pipeline(load_chain_stream(100, stride=4096))
        stats = pipeline.run(100)
        assert stats.load_replays >= 0
        assert pipeline.load_speculation.stats.mispredicted_loads > 50


class TestBranchBehaviour:
    def test_branches_counted_and_predicted(self):
        ops = []
        for i in range(600):
            if i % 3 == 2:
                ops.append(MicroOp(op_type=OP_BRANCH, pc=0x1000 + 4 * (i % 30),
                                   taken=True, target=0x1000))
            else:
                ops.append(MicroOp(op_type=OP_ALU, pc=0x1000 + 4 * (i % 30), dest=i % 64))
        pipeline = make_pipeline(iter(ops))
        stats = pipeline.run(600)
        assert stats.branches == 200
        # Always-taken branches at the same PCs become highly predictable.
        assert stats.branch_misprediction_rate < 0.2

    def test_mispredicted_branches_slow_execution(self):
        import random as _random

        def stream(predictable):
            # Both variants take their branches ~50% of the time so fetch-block
            # effects are identical; only the learnability differs (a short
            # alternating pattern the gshare component tracks vs. an
            # unlearnable pseudo-random sequence).
            rng = _random.Random(42)
            ops = []
            for i in range(1600):
                if i % 4 == 3:
                    taken = (i // 4) % 2 == 0 if predictable else rng.random() < 0.5
                    ops.append(MicroOp(op_type=OP_BRANCH, pc=0x2000, taken=taken,
                                       target=0x2000))
                else:
                    ops.append(MicroOp(op_type=OP_ALU, pc=0x1000 + 4 * (i % 32),
                                       dest=i % 64))
            return iter(ops)

        fast = make_pipeline(stream(predictable=True))
        slow = make_pipeline(stream(predictable=False))
        fast_stats = fast.run(1600)
        slow_stats = slow.run(1600)
        assert slow_stats.branch_mispredictions > 2 * fast_stats.branch_mispredictions
        assert slow_stats.cycles > fast_stats.cycles


class TestPrechargePenaltyInteraction:
    def test_on_demand_dcache_slows_down_load_chains(self):
        def build(policy, extra):
            hierarchy = MemoryHierarchy(
                HierarchyConfig(),
                icache_controller=StaticPullUpPolicy(),
                dcache_controller=policy,
            )
            return OutOfOrderPipeline(
                hierarchy, load_chain_stream(400, stride=0),
                PipelineConfig(speculative_extra_latency=extra),
            )

        baseline = build(StaticPullUpPolicy(), 0)
        ondemand = build(OnDemandPrechargePolicy(), 1)
        base_stats = baseline.run(400)
        od_stats = ondemand.run(400)
        assert od_stats.cycles > base_stats.cycles
        assert od_stats.delayed_loads > 0
