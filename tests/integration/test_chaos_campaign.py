"""The chaos campaign driver: deterministic plans, clean small campaigns."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.chaos import run_campaign, sample_plan


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


class TestPlanSampling:
    def test_sampled_plans_are_seed_deterministic(self):
        assert sample_plan(7).to_spec() == sample_plan(7).to_spec()
        assert sample_plan(7).to_spec() != sample_plan(8).to_spec()

    def test_sampled_plans_are_bounded(self):
        # Every probabilistic rule must carry a fire cap, or a sampled
        # plan could starve a trial past its recovery deadline.
        for seed in range(50):
            plan = sample_plan(seed)
            assert 1 <= len(plan.rules) <= 3
            for rule in plan.rules:
                assert rule.max_fires is not None
                assert rule.delay <= 0.1


class TestSmallCampaign:
    def test_two_fault_trials_hold_every_invariant(self):
        report = run_campaign(budget=2, seed_base=0, kill9_every=0, timeout_s=60.0)
        assert report["violations"] == 0
        assert len(report["trials"]) == 2
        assert report["verified_results"] >= 2
        for trial in report["trials"]:
            assert trial["kind"] == "faults"
            assert trial["plan"] is not None
            assert trial["violations"] == []

    def test_campaign_leaves_the_registry_clean(self):
        run_campaign(budget=1, seed_base=3, kill9_every=0, timeout_s=60.0)
        assert faults.active_spec() is None

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(budget=0)


class TestCli:
    def test_chaos_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--budget", "1",
                "--seed-base", "0",
                "--kill9-every", "0",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["violations"] == 0
        out = capsys.readouterr().out
        assert "0 invariant violation(s)" in out
