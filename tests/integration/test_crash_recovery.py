"""Crash-recovery matrix: real SIGKILLs at every layer, byte-identical results.

Three crash sites, one invariant: after recovery, every surviving result
is byte-identical to what a fault-free run produces.

* a **pool worker** SIGKILLed mid-chunk — the engine rebuilds the pool
  and re-executes the lost work;
* the **server process** kill -9'd mid-unit — a restart over the same
  store and journal resumes the job under its original id;
* the **journal's final line** torn by the crash — the server still
  boots and replays everything before the tear.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run_fast


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def _configs(benchmarks, instructions):
    return [
        SimulationConfig(benchmark=name, n_instructions=instructions, seed=1)
        for name in benchmarks
    ]


class TestPoolWorkerSigkill:
    def test_sigkilled_worker_mid_chunk_recovers_byte_identically(self, tmp_path):
        configs = _configs(["gcc", "art", "mcf", "equake"], 60_000)
        expected = [execute_run_fast(config).to_dict() for config in configs]
        engine = SimEngine(workers=2, fast=True, store=tmp_path / "store")
        results = []
        errors = []

        def run():
            try:
                results.extend(engine.run_many(configs))
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            # Wait for the pool to fork, then SIGKILL one live worker.
            deadline = time.monotonic() + 30.0
            victim = None
            while time.monotonic() < deadline and victim is None:
                pool = engine._pool
                processes = list((getattr(pool, "_processes", None) or {}).values())
                alive = [p for p in processes if p.is_alive() and p.pid]
                if alive:
                    victim = alive[0]
                else:
                    time.sleep(0.005)
            assert victim is not None, "worker pool never came up"
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            thread.join(timeout=120.0)
            engine.close()
        assert not thread.is_alive(), "run_many wedged after worker SIGKILL"
        assert errors == []
        assert [r.to_dict() for r in results] == expected
        assert engine.stats["pool_rebuilds"] >= 1


class TestServerKill9:
    def test_kill9_mid_unit_restart_resumes_byte_identically(self):
        # The chaos driver's kill -9 matrix *is* the test: submit to a
        # real `repro serve` subprocess, SIGKILL it mid-unit, restart
        # over the same store + journal, and assert the resumed job
        # completes with results identical to the fault-free baseline
        # and an exactly-empty journal replay after the clean stop.
        from repro.chaos import _kill9_trial

        trial = _kill9_trial(seed=0, n_instructions=1500, timeout_s=120.0)
        assert trial.violations == []
        assert trial.verified_results >= 1


class TestTornJournalBoot:
    def test_server_boots_past_torn_final_line_and_finishes_the_job(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.jobs import Job
        from repro.service.journal import JobJournal
        from repro.service.server import ServiceServer

        configs = _configs(["gcc"], 1500)
        expected = execute_run_fast(configs[0]).to_dict()

        # A journal whose writer died mid-append: one whole submit
        # event, then a torn line where the crash landed.
        journal_path = tmp_path / "jobs.wal"
        journal = JobJournal(journal_path)
        job = Job(kind="batch", configs=configs, labels=["gcc"])
        journal.record_submit(job)
        journal.close()
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"event":"submit","job":{"id":"job-torn"')

        engine = SimEngine(workers=1, fast=True, store=tmp_path / "store")
        server = ServiceServer(engine=engine, journal=journal_path)
        server.start()
        try:
            client = ServiceClient(server.url, retries=3, backoff=0.05)
            finished = client.wait(job.id, poll_s=0.05, timeout=120.0)
            assert finished["status"] == "done"
            payloads = client.collect({"units": finished["unit_keys"]}, finished)
            assert payloads == [expected]
        finally:
            server.stop()
