"""Integration tests checking the paper's qualitative claims end to end.

These use short runs on a subset of benchmarks, so they verify the *shape*
of the published results (who wins, in which direction, roughly by how
much), not the exact percentages — those are recorded in EXPERIMENTS.md by
the full benchmark harness.
"""

import pytest

from repro.sim import SimulationConfig, run_simulation, slowdown

N_INSTRUCTIONS = 6_000
BENCH = "gcc"


def run(dcache, icache, **kwargs):
    config = SimulationConfig(
        benchmark=kwargs.pop("benchmark", BENCH),
        dcache_policy=dcache,
        icache_policy=icache,
        feature_size_nm=kwargs.pop("feature_size_nm", 70),
        n_instructions=kwargs.pop("n_instructions", N_INSTRUCTIONS),
        **kwargs,
    )
    return run_simulation(config)


class TestClaimOraclePotential:
    """Section 4: bitline isolation can remove the vast majority of discharge."""

    def test_oracle_removes_most_discharge_at_70nm(self, small_baseline_run):
        oracle = run("oracle", "oracle")
        assert oracle.energy.dcache_discharge_savings > 0.7
        assert oracle.energy.icache_discharge_savings > 0.8

    def test_oracle_has_no_performance_cost(self, small_baseline_run):
        oracle = run("oracle", "oracle")
        assert abs(slowdown(oracle, small_baseline_run)) < 0.01


class TestClaimOnDemandNotViable:
    """Section 5: on-demand precharging delays accesses and costs performance."""

    def test_on_demand_slower_than_baseline(self, small_baseline_run):
        ondemand = run("on-demand", "on-demand")
        assert slowdown(ondemand, small_baseline_run) > 0.005

    def test_on_demand_delays_every_cache_access(self):
        ondemand = run("on-demand", "static")
        assert ondemand.dcache_delayed_accesses == ondemand.dcache_accesses


class TestClaimGatedNearOptimal:
    """Section 6: gated precharging captures most of the potential at ~1% cost."""

    def test_gated_close_to_oracle_savings(self, small_gated_run):
        oracle = run("oracle", "oracle")
        gated_savings = small_gated_run.energy.icache_discharge_savings
        oracle_savings = oracle.energy.icache_discharge_savings
        assert gated_savings > 0.75 * oracle_savings

    def test_gated_slowdown_stays_small(self, small_baseline_run, small_gated_run):
        assert slowdown(small_gated_run, small_baseline_run) < 0.03

    def test_gated_delays_far_fewer_accesses_than_on_demand(self, small_gated_run):
        ondemand = run("on-demand", "static")
        assert small_gated_run.dcache_delayed_accesses < 0.2 * ondemand.dcache_delayed_accesses

    def test_gated_keeps_only_a_few_subarrays_precharged(self, small_gated_run):
        assert small_gated_run.energy.dcache.precharged_fraction < 0.35
        assert small_gated_run.energy.icache.precharged_fraction < 0.15

    def test_instruction_cache_saves_more_than_data_cache(self, small_gated_run):
        """Instruction streams have more stable footprints (Section 6.4)."""
        assert (
            small_gated_run.energy.icache_relative_discharge
            < small_gated_run.energy.dcache_relative_discharge
        )


class TestClaimTechnologyScaling:
    """Figures 2 and 9: isolation only becomes worthwhile in nanoscale nodes."""

    def test_gated_savings_improve_from_180nm_to_70nm(self):
        old = run("gated-predecode", "gated", feature_size_nm=180)
        new = run("gated-predecode", "gated", feature_size_nm=70)
        assert new.energy.dcache_relative_discharge < old.energy.dcache_relative_discharge

    def test_gated_beats_resizable_at_70nm(self):
        gated = run("gated-predecode", "gated")
        resizable = run("resizable", "resizable")
        assert (
            gated.energy.dcache_relative_discharge
            < resizable.energy.dcache_relative_discharge
        )
        assert (
            gated.energy.icache_relative_discharge
            < resizable.energy.icache_relative_discharge
        )


class TestClaimHighMissOutliers:
    """ammp/art/health thrash the L1, so aggressive isolation costs them little."""

    def test_art_has_much_higher_miss_ratio_than_mesa(self):
        # Short runs are dominated by compulsory misses for both programs, so
        # the gap here is smaller than in steady state; art must still miss
        # clearly more often and at an outright high rate.
        art = run("static", "static", benchmark="art", n_instructions=4_000)
        mesa = run("static", "static", benchmark="mesa", n_instructions=4_000)
        assert art.dcache_miss_ratio > 1.3 * mesa.dcache_miss_ratio
        assert art.dcache_miss_ratio > 0.4

    def test_gated_still_safe_on_a_thrashing_benchmark(self):
        baseline = run("static", "static", benchmark="art", n_instructions=4_000)
        gated = run("gated-predecode", "gated", benchmark="art", n_instructions=4_000)
        assert slowdown(gated, baseline) < 0.03
        assert gated.energy.dcache_discharge_savings > 0.5
