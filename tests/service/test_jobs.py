"""Job payload parsing and validation (the 400-vs-422 boundary)."""

from __future__ import annotations

import pytest

from repro.service.jobs import (
    InvalidJob,
    Job,
    MalformedJob,
    parse_job_payload,
)
from repro.sim.config import SimulationConfig


def _config_dict(**overrides) -> dict:
    config = SimulationConfig(n_instructions=500)
    data = config.to_dict()
    data.update(overrides)
    return data


class TestStructuralValidation:
    @pytest.mark.parametrize("payload", [None, 17, "job", ["run"]])
    def test_non_object_payload_is_malformed(self, payload):
        with pytest.raises(MalformedJob):
            parse_job_payload(payload)

    def test_unknown_kind_is_malformed(self):
        with pytest.raises(MalformedJob, match="unknown job kind"):
            parse_job_payload({"kind": "zap"})

    def test_run_without_config_is_malformed(self):
        with pytest.raises(MalformedJob, match="config"):
            parse_job_payload({"kind": "run"})

    def test_config_missing_keys_is_malformed(self):
        with pytest.raises(MalformedJob, match="not a valid configuration"):
            parse_job_payload({"kind": "run", "config": {"benchmark": "gcc"}})

    def test_sweep_requires_benchmark_list(self):
        with pytest.raises(MalformedJob, match="benchmarks"):
            parse_job_payload({"kind": "sweep", "config": _config_dict()})
        with pytest.raises(MalformedJob, match="benchmarks"):
            parse_job_payload(
                {"kind": "sweep", "config": _config_dict(), "benchmarks": []}
            )

    def test_batch_requires_config_list(self):
        with pytest.raises(MalformedJob, match="configs"):
            parse_job_payload({"kind": "batch", "configs": []})

    def test_priority_must_be_integer(self):
        with pytest.raises(MalformedJob, match="priority"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(), "priority": "high"}
            )

    def test_timeout_must_be_number(self):
        with pytest.raises(MalformedJob, match="timeout_s"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(), "timeout_s": "soon"}
            )


class TestSemanticValidation:
    def test_unknown_benchmark_is_invalid(self):
        with pytest.raises(InvalidJob, match="unknown benchmark"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(benchmark="nope")}
            )

    def test_malformed_nested_scenario_is_invalid_with_position(self):
        # The 422 message must carry the parser's position annotation,
        # so remote clients see exactly what a local run would print.
        with pytest.raises(InvalidJob, match="at position 20"):
            parse_job_payload(
                {
                    "kind": "run",
                    "config": _config_dict(
                        benchmark="mix:(phases:gcc+mcf@soon)+vortex"
                    ),
                }
            )

    def test_bad_fuzz_spec_is_invalid(self):
        with pytest.raises(InvalidJob, match="fuzz depth must be between"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(benchmark="fuzz:1/99")}
            )

    def test_nested_scenario_and_fuzz_names_are_valid(self):
        for name in ("mix:(phases:gcc+mcf@500)*2+vortex@800", "fuzz:3"):
            job = parse_job_payload(
                {"kind": "run", "config": _config_dict(benchmark=name)}
            )
            assert job.configs[0].benchmark == name

    def test_unknown_policy_is_invalid(self):
        with pytest.raises(InvalidJob, match="unknown policy"):
            parse_job_payload(
                {
                    "kind": "run",
                    "config": _config_dict(
                        dcache={"name": "warp-drive", "params": {}}
                    ),
                }
            )

    def test_bad_policy_parameter_is_invalid(self):
        with pytest.raises(InvalidJob):
            parse_job_payload(
                {
                    "kind": "run",
                    "config": _config_dict(
                        dcache={"name": "gated", "params": {"bogus_knob": 3}}
                    ),
                }
            )

    def test_unknown_feature_size_is_invalid(self):
        with pytest.raises(InvalidJob):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(feature_size_nm=12345)}
            )

    def test_out_of_band_priority_is_invalid(self):
        with pytest.raises(InvalidJob, match="priority"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(), "priority": 10_000}
            )

    def test_negative_timeout_is_invalid(self):
        with pytest.raises(InvalidJob, match="timeout_s"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(), "timeout_s": -1}
            )


class TestParsing:
    def test_run_job(self):
        job = parse_job_payload({"kind": "run", "config": _config_dict()})
        assert job.kind == "run"
        assert len(job.configs) == 1
        assert job.labels == ["gcc"]
        assert job.status == "queued"
        assert job.id.startswith("job-")

    def test_sweep_expands_benchmarks(self):
        job = parse_job_payload(
            {
                "kind": "sweep",
                "config": _config_dict(),
                "benchmarks": ["gcc", "art", "mcf"],
            }
        )
        assert [c.benchmark for c in job.configs] == ["gcc", "art", "mcf"]
        assert job.labels == ["gcc", "art", "mcf"]

    def test_explicit_id_round_trips(self):
        job = parse_job_payload(
            {"kind": "run", "config": _config_dict(), "id": "job-abc"}
        )
        assert job.id == "job-abc"

    @pytest.mark.parametrize("bad_id", ["", "my job", "a/b", "x" * 200, 7])
    def test_unroutable_ids_are_malformed(self, bad_id):
        with pytest.raises(MalformedJob, match="id must be"):
            parse_job_payload(
                {"kind": "run", "config": _config_dict(), "id": bad_id}
            )

    def test_journal_round_trip_is_exact(self):
        job = parse_job_payload(
            {
                "kind": "sweep",
                "config": _config_dict(),
                "benchmarks": ["gcc", "art"],
                "priority": 7,
                "timeout_s": 30.0,
            }
        )
        clone = Job.from_dict(job.to_dict())
        assert clone.to_dict() == job.to_dict()
        assert [c.cache_key() for c in clone.configs] == [
            c.cache_key() for c in job.configs
        ]
