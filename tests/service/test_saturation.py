"""Saturation behaviour: admission under overload, recovery after a burst.

The queue-full tests use an *unstarted* :class:`ServiceServer`: with no
scheduler popping the board, submitted jobs stay queued, so a tiny
``queue_limit`` saturates deterministically without slow jobs or
timing.  ``dispatch()`` works without the HTTP thread.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen.base import PoissonArrivals, parse_rate_schedule
from repro.loadgen.runner import LoadRunner
from repro.loadgen.synthetic import MixEngine, parse_mix
from repro.service.server import ServiceServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine


def _run_payload(instructions=1500, benchmark="gcc", priority=0):
    config = SimulationConfig(
        benchmark=benchmark, dcache="gated", icache="gated",
        n_instructions=instructions,
    )
    payload = {"kind": "run", "config": config.to_dict()}
    if priority:
        payload["priority"] = priority
    return json.dumps(payload).encode()


def _submit(server, body):
    return server.dispatch("POST", "/v1/jobs", body)


@pytest.fixture()
def tiny_queue():
    """An unstarted server whose board fills after two live jobs."""
    server = ServiceServer(engine=SimEngine(fast=True), queue_limit=2)
    yield server
    # The server was never start()ed (no HTTP thread, no scheduler), so
    # a graceful stop() would block on the idle HTTP loop; release the
    # socket and the worker pool directly.
    server._httpd.server_close()
    server.engine.terminate()


class TestQueueFullUnderOverload:
    def test_sustained_overload_is_429_with_sensible_retry_after(self, tiny_queue):
        # Distinct instruction counts keep the units distinct (no
        # coalescing), so two submissions fill the queue exactly.
        for i in range(2):
            status, _, _ = _submit(tiny_queue, _run_payload(1500 + i))
            assert status == 202
        for i in range(5):  # sustained pressure, every extra submission
            status, payload, headers = _submit(tiny_queue, _run_payload(2000 + i))
            assert status == 429
            assert "full" in payload["error"]
            retry_after = int(headers["Retry-After"])
            assert 1 <= retry_after <= 60

    def test_cancel_frees_a_slot_and_admission_recovers(self, tiny_queue):
        receipts = []
        for i in range(2):
            status, receipt, _ = _submit(tiny_queue, _run_payload(1500 + i))
            assert status == 202
            receipts.append(receipt)
        status, _, _ = _submit(tiny_queue, _run_payload(3000))
        assert status == 429
        tiny_queue.board.cancel(receipts[0]["id"])
        status, _, _ = _submit(tiny_queue, _run_payload(3000))
        assert status == 202

    def test_rolling_rejection_counter_tracks_recent_429s(self, tiny_queue):
        for i in range(2):
            _submit(tiny_queue, _run_payload(1500 + i))
        for i in range(3):
            status, _, _ = _submit(tiny_queue, _run_payload(2000 + i))
            assert status == 429
        status, metrics, _ = tiny_queue.dispatch("GET", "/metrics", None)
        assert status == 200
        assert metrics["counters"]["jobs_rejected"] == 3
        assert metrics["rejections_recent"] == 3
        assert metrics["rejected_per_s_recent"] > 0

    def test_v1_metrics_alias_serves_the_same_document(self, tiny_queue):
        status, via_alias, _ = tiny_queue.dispatch("GET", "/v1/metrics", None)
        assert status == 200
        assert "queue_depth" in via_alias and "counters" in via_alias

    def test_per_priority_queue_depths(self, tiny_queue):
        status, _, _ = _submit(tiny_queue, _run_payload(1500, priority=5))
        assert status == 202
        status, _, _ = _submit(tiny_queue, _run_payload(1501))
        assert status == 202
        status, metrics, _ = tiny_queue.dispatch("GET", "/v1/metrics", None)
        assert metrics["queue_depth"] == 2
        assert metrics["queue_depth_by_priority"] == {"5": 1, "0": 1}


class TestBurstRecovery:
    def test_p95_recovers_after_a_burst(self):
        """After a saturating burst drains, fresh latencies drop back."""
        server = ServiceServer(engine=SimEngine(fast=True, workers=1)).start()
        try:
            runner = LoadRunner(server.url)
            # Burst: distinct heavyweight configs at a rate one worker
            # cannot absorb, so the queue (and p95) builds up.
            burst_mix = parse_mix(
                ",".join(f"gcc/gated:threshold={100 + 10 * i}" for i in range(8)),
                instructions=6000,
            )
            burst = runner.open_loop(
                MixEngine(
                    burst_mix,
                    PoissonArrivals(parse_rate_schedule("30"), seed=1),
                    seed=1,
                ),
                duration=1.0,
            )
            assert burst.completed > 0
            burst_p95 = burst.latency(0.95)
            # open_loop joined every in-flight request: the queue has
            # drained.  Fresh, distinct work must be fast again.
            calm_mix = parse_mix(
                "art/gated:threshold=120,art/gated:threshold=130",
                instructions=1500,
            )
            calm = runner.open_loop(
                MixEngine(
                    calm_mix,
                    PoissonArrivals(parse_rate_schedule("6"), seed=2),
                    seed=2,
                ),
                duration=1.0,
            )
            assert calm.completed == calm.offered > 0
            calm_p95 = calm.latency(0.95)
            assert calm_p95 < burst_p95
        finally:
            server.stop()
