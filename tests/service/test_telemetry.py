"""Telemetry: latency percentiles (p99), wait/exec observations, histograms."""

from __future__ import annotations

import pytest

from repro.service.telemetry import HISTOGRAM_BOUNDS, Telemetry, percentile


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.99) is None

    def test_p99_tracks_the_tail(self):
        # Nearest-rank with 50 samples: p99 selects the last value.
        values = [0.01] * 49 + [5.0]
        assert percentile(values, 0.99) == 5.0
        assert percentile(values, 0.50) == 0.01


class TestObservations:
    def test_queue_wait_feeds_window_and_histogram(self):
        telemetry = Telemetry()
        telemetry.observe_queue_wait(0.02)
        telemetry.observe_queue_wait(-1.0)  # clock skew clamps to zero
        snap = telemetry.snapshot()
        assert snap["queue_wait_s"]["samples"] == 2
        assert snap["queue_wait_s"]["p99"] == 0.02
        hist = snap["histograms"]["queue_wait_s"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.02)

    def test_unit_exec_weights_batch_size(self):
        telemetry = Telemetry()
        telemetry.observe_unit_exec(0.04, units=3)
        telemetry.observe_unit_exec(0.04, units=0)  # ignored
        snap = telemetry.snapshot()
        # One per-unit sample in the percentile window, three histogram
        # observations (a 3-unit batch is three units of work).
        assert snap["unit_exec_s"]["samples"] == 1
        assert snap["histograms"]["unit_exec_s"]["count"] == 3

    def test_job_latency_histogram_counts_only_done(self):
        telemetry = Telemetry()
        telemetry.observe_job_finished("done", 0.3)
        telemetry.observe_job_finished("failed", 0.1)
        snap = telemetry.snapshot()
        assert snap["histograms"]["job_latency_s"]["count"] == 1
        assert snap["job_latency_s"]["p99"] == 0.3

    def test_snapshot_reports_p99_for_every_latency_block(self):
        telemetry = Telemetry()
        telemetry.observe_job_finished("done", 0.3)
        telemetry.observe_queue_wait(0.01)
        telemetry.observe_unit_exec(0.2)
        snap = telemetry.snapshot()
        for block in ("job_latency_s", "queue_wait_s", "unit_exec_s"):
            assert set(snap[block]) == {"p50", "p95", "p99", "samples"}

    def test_histogram_bounds_are_the_shared_constant(self):
        telemetry = Telemetry()
        snap = telemetry.snapshot()
        for payload in snap["histograms"].values():
            assert tuple(payload["bounds"]) == HISTOGRAM_BOUNDS
