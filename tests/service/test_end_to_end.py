"""Acceptance: a real `repro serve` process vs a local sweep.

The PR's acceptance criterion, verbatim: a sweep submitted through
``repro submit`` against a live ``repro serve`` returns results
byte-identical (``RunResult.to_dict()`` equality) to the same sweep run
locally, including when half the jobs are duplicates that get coalesced
and when the server is killed and restarted mid-queue (journal resume).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"
BENCHMARKS = ["gcc", "art", "mcf"]
INSTRUCTIONS = "2500"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(*args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=_env(),
        timeout=timeout,
    )


class _Server:
    """A `repro serve` subprocess on an ephemeral port."""

    def __init__(self, tmp_path: Path, log_name: str = "serve.log"):
        self.tmp_path = tmp_path
        self.log_path = tmp_path / log_name
        self.process = None
        self.url = None

    def start(self):
        self.log = open(self.log_path, "a")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--fast",
                "--store", str(self.tmp_path / "store"),
                "--journal", str(self.tmp_path / "jobs.wal"),
            ],
            stdout=self.log,
            stderr=self.log,
            env=_env(),
        )
        deadline = time.time() + 30
        pattern = re.compile(r"listening on (http://[\d.]+:\d+)")
        while time.time() < deadline:
            match = pattern.search(self.log_path.read_text())
            if match:
                self.url = match.group(1)
                break
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server died at startup:\n{self.log_path.read_text()}"
                )
            time.sleep(0.05)
        else:
            raise TimeoutError("server never announced its address")
        # Wait for /healthz to answer.
        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                with urllib.request.urlopen(self.url + "/healthz", timeout=2):
                    return self
            except OSError:
                time.sleep(0.05)
        raise TimeoutError("healthz never came up")

    def kill9(self):
        self.process.kill()
        self.process.wait(timeout=10)
        self.log.close()

    def stop(self):
        if self.process and self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if not self.log.closed:
            self.log.close()


@pytest.fixture()
def local_sweep(tmp_path_factory):
    """The reference: the same sweep run locally via `repro sweep`."""
    result = _repro(
        "sweep",
        "--benchmarks", ",".join(BENCHMARKS),
        "--dcache", "gated",
        "--fast",
        "--instructions", INSTRUCTIONS,
        "--json",
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def _submit_args(extra=()):
    return [
        "submit",
        "--benchmarks", ",".join(BENCHMARKS),
        "--dcache", "gated",
        "--instructions", INSTRUCTIONS,
        *extra,
    ]


class TestLiveServer:
    def test_remote_sweep_is_byte_identical_with_coalesced_duplicates(
        self, tmp_path, local_sweep
    ):
        server = _Server(tmp_path)
        server.start()
        try:
            # Two identical sweeps in flight: the second must coalesce
            # (or hit the cache), and both must match the local run.
            first = _repro(*_submit_args(["--server", server.url, "--json"]))
            assert first.returncode == 0, first.stderr
            assert json.loads(first.stdout) == local_sweep  # byte-identical

            receipt = _repro(
                *_submit_args(["--server", server.url, "--no-wait", "--json"])
            )
            assert receipt.returncode == 0, receipt.stderr
            parsed = json.loads(receipt.stdout)
            assert parsed["coalesced"] + parsed["cached"] == len(BENCHMARKS)

            second = _repro(
                "result", parsed["id"], "--server", server.url, "--json"
            )
            assert second.returncode == 0, second.stderr
            assert json.loads(second.stdout) == [
                local_sweep[name] for name in BENCHMARKS
            ]

            # /healthz and /metrics over the real wire.
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
                metrics = json.loads(r.read())
            assert metrics["counters"]["jobs_submitted"] == 2
            served = (
                metrics["counters"]["units_cached"]
                + metrics["counters"]["units_coalesced"]
            )
            assert served == len(BENCHMARKS)
        finally:
            server.stop()
        assert server.process.returncode == 0  # graceful SIGTERM drain

    def test_kill9_midqueue_then_restart_resumes_byte_identical(
        self, tmp_path, local_sweep
    ):
        server = _Server(tmp_path)
        server.start()
        # A long sweep (heavy instruction count) we kill mid-execution.
        heavy = [
            "submit",
            "--benchmarks", ",".join(BENCHMARKS),
            "--dcache", "gated",
            "--instructions", "120000",
            "--server", server.url,
            "--no-wait", "--json",
        ]
        receipt = _repro(*heavy)
        assert receipt.returncode == 0, receipt.stderr
        job_id = json.loads(receipt.stdout)["id"]
        time.sleep(0.6)  # let it start executing, not finish
        server.kill9()

        restarted = _Server(tmp_path, log_name="serve-restarted.log")
        restarted.start()
        try:
            log_text = (tmp_path / "serve-restarted.log").read_text()
            assert "resumed" in log_text  # journal replay happened
            fetched = _repro(
                "result", job_id, "--server", restarted.url, "--json",
                timeout=300,
            )
            assert fetched.returncode == 0, fetched.stderr
            local = _repro(
                "sweep",
                "--benchmarks", ",".join(BENCHMARKS),
                "--dcache", "gated",
                "--fast",
                "--instructions", "120000",
                "--json",
                timeout=300,
            )
            assert local.returncode == 0, local.stderr
            local_results = json.loads(local.stdout)
            assert json.loads(fetched.stdout) == [
                local_results[name] for name in BENCHMARKS
            ]
        finally:
            restarted.stop()

    def test_cli_error_paths_exit_2(self, tmp_path):
        server = _Server(tmp_path)
        server.start()
        try:
            bad = _repro(
                "submit", "--benchmark", "gcc",
                "--dcache", "warp-drive",
                "--server", server.url,
            )
            assert bad.returncode == 2
            assert "warp-drive" in bad.stderr
        finally:
            server.stop()

    def test_unreachable_server_exits_2(self):
        result = _repro(
            "jobs", "--server", "http://127.0.0.1:9",
        )
        assert result.returncode == 2
        assert "cannot reach" in result.stderr
