"""Trace propagation client → server → scheduler → fork workers, and
the observability endpoints (/v1/trace, /metrics?format=prom)."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace as obs_trace
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    obs_trace.clear_recorder()
    obs_trace.clear_current()


@pytest.fixture()
def server(tmp_path):
    engine = SimEngine(fast=True, store=tmp_path / "store")
    with ServiceServer(engine=engine) as server:
        yield server


def _submit(server, headers=None, benchmark="gcc", instructions=400):
    body = json.dumps(
        {
            "kind": "run",
            "config": SimulationConfig(
                benchmark=benchmark, n_instructions=instructions
            ).to_dict(),
        }
    ).encode()
    return server.dispatch("POST", "/v1/jobs", body, headers)


def _wait_done(server, job_id, timeout=30.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job, _ = server.dispatch("GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if job["status"] in ("done", "failed", "cancelled", "poisoned"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s")


class TestHeaderPropagation:
    def test_header_trace_id_reaches_every_span(self, server):
        ctx = obs_trace.TraceContext(
            trace_id="f" * 16, span_id="1234abcd", t_ms=1
        )
        status, receipt, _ = _submit(
            server, headers={obs_trace.HEADER: ctx.header()}
        )
        assert status == 202
        job = _wait_done(server, receipt["id"])
        assert job["status"] == "done"
        assert job["trace_id"] == "f" * 16
        spans = {s.name: s for s in server.spans.spans()}
        for name in ("client.submit", "server.admit", "job.wait", "unit.exec"):
            assert name in spans, f"missing span {name}"
            assert spans[name].trace_id == "f" * 16
        # The tree: admit and unit.exec parent to the client's root span.
        assert spans["client.submit"].span_id == "1234abcd"
        assert spans["server.admit"].parent_id == "1234abcd"
        assert spans["unit.exec"].parent_id == "1234abcd"

    def test_submission_without_header_still_gets_a_trace(self, server):
        status, receipt, _ = _submit(server)
        assert status == 202
        job = _wait_done(server, receipt["id"])
        assert len(job["trace_id"]) == 16
        names = [s.name for s in server.spans.spans()]
        assert "server.admit" in names
        assert "client.submit" not in names  # no client send time to trust

    def test_malformed_header_is_ignored_not_rejected(self, server):
        status, receipt, _ = _submit(
            server, headers={obs_trace.HEADER: "garbage"}
        )
        assert status == 202
        job = _wait_done(server, receipt["id"])
        assert job["status"] == "done"


class TestForkWorkerSpans:
    def test_chunk_spans_come_back_from_fork_workers(self, tmp_path):
        engine = SimEngine(fast=True, workers=2, store=tmp_path / "store")
        with ServiceServer(engine=engine) as server:
            client = ServiceClient(server.url)
            configs = [
                SimulationConfig(benchmark=b, n_instructions=500)
                for b in ("gcc", "art")
            ]
            receipt = client.submit_batch(configs)
            job = client.wait(receipt["id"])
            assert job["status"] == "done"
            trace_id = client.trace_id_for(receipt["id"])
            chunks = [
                s for s in server.spans.spans() if s.name == "engine.chunk"
            ]
            assert chunks, "no chunk spans recorded"
            assert all(s.trace_id == trace_id for s in chunks)
            # Worker pids ride in attrs; the parent is the unit.exec span.
            unit = next(
                s for s in server.spans.spans() if s.name == "unit.exec"
            )
            for chunk in chunks:
                assert chunk.parent_id == unit.span_id
                assert chunk.attrs["worker_pid"] > 0
                assert chunk.attrs["configs"] >= 1


class TestTraceEndpoint:
    def test_v1_trace_returns_chrome_json(self, server):
        _, receipt, _ = _submit(server)
        _wait_done(server, receipt["id"])
        status, payload, _ = server.dispatch("GET", "/v1/trace")
        assert status == 200
        assert payload["displayTimeUnit"] == "ms"
        assert payload["reproLastSeq"] >= len(payload["traceEvents"]) > 0
        event = payload["traceEvents"][0]
        assert event["ph"] == "X" and "trace_id" in event["args"]

    def test_since_is_incremental(self, server):
        _, receipt, _ = _submit(server)
        _wait_done(server, receipt["id"])
        _, payload, _ = server.dispatch("GET", "/v1/trace")
        last = payload["reproLastSeq"]
        status, tail, _ = server.dispatch("GET", f"/v1/trace?since={last}")
        assert status == 200
        assert tail["traceEvents"] == []
        status, tail, _ = server.dispatch("GET", f"/v1/trace?since={last - 1}")
        assert len(tail["traceEvents"]) == 1

    def test_bad_since_is_400(self, server):
        status, payload, _ = server.dispatch("GET", "/v1/trace?since=soon")
        assert status == 400
        assert "since" in payload["error"]


class TestPrometheusEndpoint:
    def test_prom_format_is_text_with_content_type(self, server):
        _, receipt, _ = _submit(server)
        _wait_done(server, receipt["id"])
        status, body, headers = server.dispatch(
            "GET", "/metrics?format=prom"
        )
        assert status == 200
        assert isinstance(body, str)
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        assert "repro_jobs_submitted_total 1" in body
        assert 'repro_unit_exec_seconds_bucket{le="+Inf"} 1' in body

    def test_json_metrics_keep_histograms_and_span_counters(self, server):
        _, receipt, _ = _submit(server)
        _wait_done(server, receipt["id"])
        status, metrics, _ = server.dispatch("GET", "/metrics")
        assert status == 200
        for key in ("job_latency_s", "queue_wait_s", "unit_exec_s",
                    "chunk_exec_s"):
            hist = metrics["histograms"][key]
            assert len(hist["counts"]) == len(hist["bounds"]) + 1
        assert metrics["spans_recorded"] >= 4
        assert metrics["spans_dropped"] == 0
        assert metrics["unit_exec_s"]["samples"] >= 1
        assert metrics["queue_wait_s"]["p99"] is not None

    def test_unknown_format_falls_back_to_json(self, server):
        status, payload, _ = server.dispatch("GET", "/metrics?format=yaml")
        assert status == 200
        assert isinstance(payload, dict)


class TestJobPayloadTraceId:
    def test_jobs_listing_carries_trace_ids(self, server):
        _, receipt, _ = _submit(server)
        _wait_done(server, receipt["id"])
        status, listing, _ = server.dispatch("GET", "/v1/jobs")
        assert status == 200
        assert all(len(job["trace_id"]) == 16 for job in listing["jobs"])
