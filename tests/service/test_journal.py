"""Write-ahead journal: replay, compaction, locking, torn writes."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import Job
from repro.service.journal import JobJournal, JournalLocked
from repro.sim.config import SimulationConfig


def _job(benchmark="gcc", job_id=None, instructions=500):
    job = Job(
        kind="run",
        configs=[SimulationConfig(benchmark=benchmark, n_instructions=instructions)],
        labels=[benchmark],
    )
    if job_id:
        job.id = job_id
    return job


class TestReplay:
    def test_unfinished_jobs_replay_in_order(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        first = _job("gcc", "job-1")
        second = _job("art", "job-2")
        third = _job("mcf", "job-3")
        for job in (first, second, third):
            journal.record_submit(job)
        second.status = "done"
        journal.record_finish(second)
        journal.close()

        replayed = JobJournal(tmp_path / "wal").replay()
        assert [job.id for job in replayed] == ["job-1", "job-3"]
        assert replayed[0].configs[0].benchmark == "gcc"

    def test_failed_and_cancelled_jobs_do_not_replay(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        failed = _job("gcc", "job-f")
        cancelled = _job("art", "job-c")
        journal.record_submit(failed)
        journal.record_submit(cancelled)
        failed.status, failed.error = "failed", "boom"
        journal.record_finish(failed)
        cancelled.status = "cancelled"
        journal.record_finish(cancelled)
        journal.close()
        assert JobJournal(tmp_path / "wal").replay() == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        journal.record_submit(_job("gcc", "job-ok"))
        journal.close()
        with open(tmp_path / "wal", "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"event":"submit","job":{"id":"job-torn"')
        replayed = JobJournal(tmp_path / "wal").replay()
        assert [job.id for job in replayed] == ["job-ok"]

    def test_missing_file_replays_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        journal.close()
        (tmp_path / "wal").unlink()
        assert journal.replay() == []

    def test_poisoned_event_is_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        job = _job("gcc", "job-p")
        journal.record_submit(job)
        job.status, job.error = "poisoned", "unit quarantined"
        journal.record_finish(job)
        journal.close()
        # A quarantined job must not resurrect (and re-poison) on boot.
        assert JobJournal(tmp_path / "wal").replay() == []


class TestTornWrites:
    def test_injected_torn_append_self_heals_on_next_line(self, tmp_path):
        from repro import faults

        journal = JobJournal(tmp_path / "wal")
        try:
            journal.record_submit(_job("gcc", "job-1"))
            faults.install("journal.append=torn:n=1")
            with pytest.raises(OSError):
                journal.record_submit(_job("art", "job-2"))
            faults.clear()
            # The next append terminates the torn line first, so only
            # the interrupted event is lost — not the one after it.
            journal.record_submit(_job("mcf", "job-3"))
        finally:
            faults.clear()
            journal.close()
        replayed = JobJournal(tmp_path / "wal").replay()
        assert [job.id for job in replayed] == ["job-1", "job-3"]

    def test_injected_append_error_loses_only_that_event(self, tmp_path):
        from repro import faults

        journal = JobJournal(tmp_path / "wal")
        try:
            faults.install("journal.append=error:n=1")
            with pytest.raises(OSError):
                journal.record_submit(_job("gcc", "job-lost"))
            faults.clear()
            journal.record_submit(_job("art", "job-kept"))
        finally:
            faults.clear()
            journal.close()
        replayed = JobJournal(tmp_path / "wal").replay()
        assert [job.id for job in replayed] == ["job-kept"]


class TestCompaction:
    def test_compact_rewrites_to_live_jobs_only(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        live = _job("gcc", "job-live")
        dead = _job("art", "job-dead")
        journal.record_submit(live)
        journal.record_submit(dead)
        dead.status = "done"
        journal.record_finish(dead)
        journal.compact(journal.replay())
        lines = (tmp_path / "wal").read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["job"]["id"] == "job-live"
        # The journal stays appendable after compaction.
        journal.record_submit(_job("mcf", "job-after"))
        journal.close()
        replayed = JobJournal(tmp_path / "wal").replay()
        assert [job.id for job in replayed] == ["job-live", "job-after"]


class TestLocking:
    def test_second_journal_on_same_path_fails_fast(self, tmp_path):
        journal = JobJournal(tmp_path / "wal")
        with pytest.raises(JournalLocked):
            JobJournal(tmp_path / "wal")
        journal.close()
        # Released on close: a new server can take over.
        JobJournal(tmp_path / "wal").close()
