"""`--server URL` on run/sweep/experiment: remote == local, exactly."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service.server import ServiceServer
from repro.sim.engine import SimEngine


@pytest.fixture()
def server(tmp_path):
    engine = SimEngine(fast=True, store=tmp_path / "store")
    with ServiceServer(engine=engine) as server:
        yield server


def run_cli(capsys, *argv):
    status = main(list(argv))
    return status, capsys.readouterr().out


class TestRemoteExecution:
    def test_run_remote_matches_local(self, capsys, server):
        args = ["run", "--benchmark", "gcc", "--dcache", "gated",
                "--instructions", "600", "--json"]
        status, local = run_cli(capsys, *args, "--fast")
        assert status == 0
        status, remote = run_cli(capsys, *args, "--server", server.url)
        assert status == 0
        assert json.loads(remote) == json.loads(local)

    def test_sweep_remote_matches_local(self, capsys, server):
        args = ["sweep", "--benchmarks", "gcc,art", "--dcache", "gated",
                "--instructions", "600", "--json"]
        status, local = run_cli(capsys, *args, "--fast")
        assert status == 0
        status, remote = run_cli(capsys, *args, "--server", server.url)
        assert status == 0
        # Byte-identical payloads, benchmark order preserved.
        assert remote == local

    def test_experiment_remote_matches_local(self, capsys, server):
        args = ["experiment", "figure8", "--benchmarks", "gcc",
                "--instructions", "500", "--json"]
        status, local = run_cli(capsys, *args, "--fast")
        assert status == 0
        status, remote = run_cli(capsys, *args, "--server", server.url)
        assert status == 0
        local_payload = json.loads(local)
        remote_payload = json.loads(remote)
        # The experiment's artefact is identical; the `runs` section may
        # order results differently (remote insertion vs local LRU).
        assert remote_payload["result"] == local_payload["result"]
        key = lambda run: (run["benchmark"], run["dcache_policy"], run["subarray_bytes"])
        assert sorted(remote_payload["runs"], key=key) == sorted(
            local_payload["runs"], key=key
        )
