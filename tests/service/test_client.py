"""Client retry discipline: Retry-After on 429, jittered backoff on 5xx."""

from __future__ import annotations

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import (
    RemoteEngine,
    RetryBudgetExceeded,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Serves a scripted sequence of (status, headers, payload) responses."""

    script = []  # mutated per test
    calls = []

    def _serve(self):
        type(self).calls.append(self.path)
        if self.script:
            status, headers, payload = self.script.pop(0)
        else:
            status, headers, payload = 200, {}, {"ok": True}
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _serve

    def log_message(self, *args):
        pass


@pytest.fixture()
def scripted():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _ScriptedHandler.script = []
    _ScriptedHandler.calls = []
    yield server, f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


class TestRetryDiscipline:
    def test_429_honours_retry_after_header(self, scripted):
        _, url = scripted
        sleeps = []
        _ScriptedHandler.script = [
            (429, {"Retry-After": "3"}, {"error": "queue full"}),
            (200, {}, {"ok": True}),
        ]
        client = ServiceClient(
            url, retries=2, backoff=0.01, sleep=sleeps.append, jitter=False
        )
        assert client._request("GET", "/anything") == {"ok": True}
        assert sleeps == [3.0]

    def test_429_jitter_keeps_at_least_half_the_retry_after(self, scripted):
        # Equal jitter: the server's admission hint stays meaningful
        # (floor ra/2) while the herd it turned away decorrelates.
        _, url = scripted
        sleeps = []
        _ScriptedHandler.script = [
            (429, {"Retry-After": "3"}, {"error": "queue full"}),
            (200, {}, {"ok": True}),
        ]
        client = ServiceClient(url, retries=2, backoff=0.01, sleep=sleeps.append)
        assert client._request("GET", "/anything") == {"ok": True}
        assert len(sleeps) == 1
        assert 1.5 <= sleeps[0] <= 3.0

    def test_429_exhausting_retries_raises_service_error(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = [
            (429, {"Retry-After": "1"}, {"error": "queue full"})
        ] * 3
        client = ServiceClient(url, retries=2, backoff=0.01, sleep=lambda s: None)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/anything")
        assert excinfo.value.status == 429

    def test_5xx_retries_with_exponential_backoff(self, scripted):
        _, url = scripted
        sleeps = []
        _ScriptedHandler.script = [
            (500, {}, {"error": "transient"}),
            (500, {}, {"error": "transient"}),
            (200, {}, {"ok": True}),
        ]
        client = ServiceClient(
            url, retries=3, backoff=0.1, sleep=sleeps.append, jitter=False
        )
        assert client._request("GET", "/anything") == {"ok": True}
        assert sleeps == [0.1, 0.2]

    def test_5xx_jittered_backoff_stays_inside_the_nominal_window(self, scripted):
        _, url = scripted
        sleeps = []
        _ScriptedHandler.script = [
            (500, {}, {"error": "transient"}),
            (500, {}, {"error": "transient"}),
            (200, {}, {"ok": True}),
        ]
        client = ServiceClient(url, retries=3, backoff=0.1, sleep=sleeps.append)
        assert client._request("GET", "/anything") == {"ok": True}
        # Full jitter: each sleep is a uniform draw over (floor, nominal].
        assert len(sleeps) == 2
        assert 0.0 < sleeps[0] <= 0.1
        assert 0.0 < sleeps[1] <= 0.2

    def test_jitter_decorrelates_a_thundering_herd(self, scripted):
        # A fleet of clients rejected at the same instant must not come
        # back at the same instant: with jitter their first retry sleeps
        # spread out instead of all landing on the Retry-After figure.
        _, url = scripted
        herd_sleeps = []
        for seed in range(12):
            sleeps = []
            _ScriptedHandler.script = [
                (429, {"Retry-After": "2"}, {"error": "queue full"}),
                (200, {}, {"ok": True}),
            ]
            client = ServiceClient(
                url, retries=1, backoff=0.01, sleep=sleeps.append,
                rng=random.Random(seed),
            )
            assert client._request("GET", "/anything") == {"ok": True}
            herd_sleeps.append(sleeps[0])
        # Everyone honours at least half the server's hint...
        assert all(1.0 <= s <= 2.0 for s in herd_sleeps)
        # ...but the herd is spread, not synchronised on one instant.
        assert len({round(s, 3) for s in herd_sleeps}) > 6
        assert max(herd_sleeps) - min(herd_sleeps) > 0.1

    def test_4xx_never_retries(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = [(422, {}, {"error": "unknown policy"})]
        client = ServiceClient(url, retries=5, backoff=0.01, sleep=lambda s: None)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/anything")
        assert excinfo.value.status == 422
        assert "unknown policy" in excinfo.value.message
        assert len(_ScriptedHandler.calls) == 1

    def test_unreachable_server_raises_service_unavailable(self):
        client = ServiceClient(
            "http://127.0.0.1:9", retries=1, backoff=0.01, sleep=lambda s: None
        )
        with pytest.raises(ServiceUnavailable):
            client._request("GET", "/healthz")

    def test_wait_times_out(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = []
        # Default script returns {"ok": True} with no status field — make
        # the job endpoint return a perpetually running job instead.
        _ScriptedHandler.script = [
            (200, {}, {"id": "job-x", "status": "running"})
        ] * 50
        client = ServiceClient(url, retries=0, sleep=lambda s: None)
        with pytest.raises(TimeoutError):
            client.wait("job-x", poll_s=0.0, timeout=0.0)


class _FakeClock:
    """Monotonic clock the sleep callback advances — no real waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryBudget:
    def test_budget_clips_sleeps_then_raises(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = [(500, {}, {"error": "transient"})] * 10
        clock = _FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        client = ServiceClient(
            url, retries=9, backoff=10.0, jitter=False,
            retry_budget_s=15.0, clock=clock, sleep=sleep,
        )
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            client._request("GET", "/anything")
        # First sleep takes the full nominal backoff, the second is
        # clipped to the 5s remaining, the third attempt is refused.
        assert sleeps == [10.0, 5.0]
        assert "15.0s" in str(excinfo.value)
        assert "transient" in str(excinfo.value)  # carries the last failure

    def test_budget_exceeded_is_a_service_unavailable(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = [(503, {}, {"error": "down"})] * 10
        clock = _FakeClock()
        client = ServiceClient(
            url, retries=9, backoff=60.0, jitter=False,
            retry_budget_s=30.0, clock=clock,
            sleep=lambda s: clock.advance(s),
        )
        # Deadline-aware callers can still catch the broad class.
        with pytest.raises(ServiceUnavailable):
            client._request("GET", "/anything")

    def test_budget_bounds_transport_error_retries(self):
        clock = _FakeClock()
        client = ServiceClient(
            "http://127.0.0.1:9", retries=100, backoff=5.0, jitter=False,
            retry_budget_s=12.0, clock=clock,
            sleep=lambda s: clock.advance(s),
        )
        with pytest.raises(RetryBudgetExceeded):
            client._request("GET", "/healthz")
        assert clock.now <= 12.0  # never slept past the deadline

    def test_request_inside_budget_succeeds_unclipped(self, scripted):
        _, url = scripted
        _ScriptedHandler.script = [
            (500, {}, {"error": "transient"}),
            (200, {}, {"ok": True}),
        ]
        clock = _FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        client = ServiceClient(
            url, retries=3, backoff=0.2, jitter=False,
            retry_budget_s=60.0, clock=clock, sleep=sleep,
        )
        assert client._request("GET", "/anything") == {"ok": True}
        assert sleeps == [0.2]

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:9", retry_budget_s=0.0)


class TestRemoteEngineSurface:
    def test_remote_engine_accepts_engine_kwargs(self, scripted):
        # run_many must tolerate the SimEngine keyword surface even
        # though the server decides workers/fast.
        _, url = scripted
        engine = RemoteEngine(ServiceClient(url))
        assert engine.run_many([], workers=4, fast=True, use_cache=False) == []
        assert engine.cached_results() == []
        engine.close()
