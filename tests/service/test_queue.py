"""JobBoard semantics: priority order, coalescing, cancellation, limits."""

from __future__ import annotations

import pytest

from repro.service.jobs import Job
from repro.service.queue import JobBoard, QueueFull
from repro.sim.config import SimulationConfig
from repro.sim.engine import execute_run_fast
from repro.sim.store import ResultStore


def _job(benchmark="gcc", priority=0, instructions=400, seed=1, job_id=None):
    config = SimulationConfig(
        benchmark=benchmark, n_instructions=instructions, seed=seed
    )
    job = Job(kind="run", configs=[config], labels=[benchmark], priority=priority)
    if job_id:
        job.id = job_id
    return job


class TestPriorityOrder:
    def test_fifo_within_one_priority(self):
        board = JobBoard()
        first = _job("gcc", instructions=400)
        second = _job("gcc", instructions=401)
        board.submit(first)
        board.submit(second)
        assert board.pop(timeout=0.1).id == first.id
        assert board.pop(timeout=0.1).id == second.id

    def test_higher_priority_pops_first(self):
        board = JobBoard()
        low = _job("gcc", priority=0, instructions=400)
        high = _job("art", priority=5, instructions=400)
        board.submit(low)
        board.submit(high)
        assert board.pop(timeout=0.1).id == high.id
        assert board.pop(timeout=0.1).id == low.id

    def test_pop_times_out_empty(self):
        board = JobBoard()
        assert board.pop(timeout=0.05) is None


class TestCoalescing:
    def test_identical_in_flight_jobs_share_one_unit(self):
        board = JobBoard()
        first = _job("gcc")
        duplicate = _job("gcc")
        r1 = board.submit(first)
        r2 = board.submit(duplicate)
        assert r1.unit_keys == r2.unit_keys
        assert r2.coalesced == 1
        assert board.pending_units() == 1

        popped = board.pop(timeout=0.1)
        units = board.claim(popped)
        assert len(units) == 1
        # The other job claims nothing — it waits on the same unit.
        other = board.pop(timeout=0.1)
        assert board.claim(other) == []

        result = execute_run_fast(units[0].config)
        board.complete_unit(units[0].key, result)
        assert first.status == "done"
        assert duplicate.status == "done"

    def test_completed_units_serve_from_store_without_pool(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=400)
        store.put(config, execute_run_fast(config))
        board = JobBoard(store=store)
        receipt = board.submit(_job("gcc"))
        assert receipt.cached == 1
        assert receipt.status == "done"
        assert board.pending_units() == 0

    def test_result_payload_round_trips(self):
        board = JobBoard()
        job = _job("gcc")
        board.submit(job)
        popped = board.pop(timeout=0.1)
        (unit,) = board.claim(popped)
        result = execute_run_fast(unit.config)
        board.complete_unit(unit.key, result)
        assert board.result_payload(unit.key) == result.to_dict()
        payload = board.job_payload(job.id)
        assert payload["status"] == "done"
        assert payload["results"][unit.key] == result.to_dict()


class TestQueueLimit:
    def test_queue_full_raises_with_retry_hint(self):
        board = JobBoard(queue_limit=2)
        board.submit(_job("gcc", instructions=400))
        board.submit(_job("gcc", instructions=401))
        with pytest.raises(QueueFull) as excinfo:
            board.submit(_job("gcc", instructions=402))
        assert excinfo.value.retry_after >= 1.0

    def test_terminal_jobs_free_capacity(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=400)
        store.put(config, execute_run_fast(config))
        board = JobBoard(store=store, queue_limit=1)
        receipt = board.submit(_job("gcc"))  # done instantly from the store
        assert receipt.status == "done"
        board.submit(_job("gcc", instructions=401))  # capacity is free again


class TestCancellation:
    def test_cancel_queued_job(self):
        board = JobBoard()
        job = _job("gcc")
        board.submit(job)
        cancelled = board.cancel(job.id)
        assert cancelled.status == "cancelled"
        assert board.pending_units() == 0
        assert board.pop(timeout=0.05) is None

    def test_cancel_unknown_job(self):
        assert JobBoard().cancel("job-nope") is None

    def test_cancel_keeps_units_other_jobs_need(self):
        board = JobBoard()
        first = _job("gcc")
        second = _job("gcc")
        board.submit(first)
        board.submit(second)
        board.cancel(first.id)
        assert first.status == "cancelled"
        assert second.status == "queued"
        # The shared unit must survive for the second job.
        assert board.pending_units() == 1

    def test_release_units_requeues_waiting_jobs(self):
        board = JobBoard()
        job = _job("gcc")
        board.submit(job)
        popped = board.pop(timeout=0.1)
        (unit,) = board.claim(popped)
        board.release_units([unit.key])
        again = board.pop(timeout=0.1)
        assert again.id == job.id
        assert len(board.claim(again)) == 1


class TestFailure:
    def test_failed_unit_fails_attached_jobs(self):
        board = JobBoard()
        first = _job("gcc")
        second = _job("gcc")
        board.submit(first)
        board.submit(second)
        popped = board.pop(timeout=0.1)
        (unit,) = board.claim(popped)
        board.fail_unit(unit.key, "worker exploded")
        assert first.status == "failed" and first.error == "worker exploded"
        assert second.status == "failed"

    def test_finished_hook_fires_for_every_terminal_job(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=400)
        store.put(config, execute_run_fast(config))
        board = JobBoard(store=store)
        seen = []
        board.on_job_finished = lambda job: seen.append((job.id, job.status))
        done = _job("gcc")
        board.submit(done)  # instant store hit
        cancelled = _job("gcc", instructions=999)
        board.submit(cancelled)
        board.cancel(cancelled.id)
        assert (done.id, "done") in seen
        assert (cancelled.id, "cancelled") in seen
