"""ServiceServer endpoints, including every failure path the API promises."""

from __future__ import annotations

import json
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine


def _payload(benchmark="gcc", instructions=400, **extra) -> dict:
    body = {
        "kind": "run",
        "config": SimulationConfig(
            benchmark=benchmark, n_instructions=instructions
        ).to_dict(),
    }
    body.update(extra)
    return body


@pytest.fixture()
def server(tmp_path):
    engine = SimEngine(fast=True, store=tmp_path / "store")
    with ServiceServer(engine=engine, journal=tmp_path / "wal") as server:
        yield server


def _post(server, body_bytes):
    return server.dispatch("POST", "/v1/jobs", body_bytes)


class TestFailurePaths:
    def test_malformed_json_is_400_not_traceback(self, server):
        status, payload, _ = _post(server, b"{definitely not json")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_empty_body_is_400(self, server):
        status, payload, _ = _post(server, b"")
        assert status == 400

    def test_structurally_broken_job_is_400(self, server):
        status, payload, _ = _post(server, json.dumps({"kind": "zap"}).encode())
        assert status == 400
        assert "unknown job kind" in payload["error"]

    def test_unknown_policy_is_422_with_message(self, server):
        body = _payload()
        body["config"]["dcache"] = {"name": "warp-drive", "params": {}}
        status, payload, _ = _post(server, json.dumps(body).encode())
        assert status == 422
        assert "warp-drive" in payload["error"]

    def test_unknown_benchmark_is_422_with_message(self, server):
        status, payload, _ = _post(
            server, json.dumps(_payload(benchmark="nope")).encode()
        )
        assert status == 422
        assert "unknown benchmark" in payload["error"]

    def test_unknown_job_is_404(self, server):
        status, payload, _ = server.dispatch("GET", "/v1/jobs/job-missing", None)
        assert status == 404

    def test_unknown_result_key_is_404(self, server):
        status, _, _ = server.dispatch("GET", "/v1/results/" + "0" * 32, None)
        assert status == 404

    def test_malformed_result_key_is_404_not_500(self, server):
        for key in ("zz", "DEADBEEF", "a.b", "%2e%2e"):
            status, _, _ = server.dispatch("GET", f"/v1/results/{key}", None)
            assert status == 404, key

    def test_duplicate_job_id_is_409_and_journal_stays_clean(self, server):
        body = json.dumps(_payload(id="job-dup")).encode()
        status, _, _ = _post(server, body)
        assert status == 202
        status, payload, _ = _post(server, body)
        assert status == 409
        assert "duplicate" in payload["error"]
        # The journal must not carry a second submit for the id.
        text = server.journal.path.read_text()
        assert text.count('"job-dup"') <= 2  # one submit + at most one finish

    def test_unroutable_job_id_is_400(self, server):
        status, payload, _ = _post(
            server, json.dumps(_payload(id="my job/../x")).encode()
        )
        assert status == 400
        assert "id must be" in payload["error"]

    def test_unknown_endpoint_is_404(self, server):
        status, _, _ = server.dispatch("GET", "/v2/nothing", None)
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _, headers = server.dispatch("DELETE", "/v1/jobs", None)
        assert status == 405
        assert "Allow" in headers

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        engine = SimEngine(fast=True)
        with ServiceServer(engine=engine, queue_limit=1) as server:
            # Occupy the single slot with a job the scheduler will chew on.
            status, first, _ = _post(
                server, json.dumps(_payload(instructions=200_000)).encode()
            )
            assert status == 202
            status, payload, headers = _post(
                server, json.dumps(_payload(instructions=201_000)).encode()
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "full" in payload["error"]
            server.board.cancel(first["id"])

    def test_rejected_job_does_not_resurrect_after_restart(self, tmp_path):
        engine = SimEngine(fast=True)
        wal = tmp_path / "wal"
        with ServiceServer(engine=engine, queue_limit=1, journal=wal) as server:
            status, first, _ = _post(
                server, json.dumps(_payload(instructions=200_000)).encode()
            )
            assert status == 202
            status, _, _ = _post(
                server, json.dumps(_payload(instructions=201_000)).encode()
            )
            assert status == 429
            server.board.cancel(first["id"])
        from repro.service.journal import JobJournal

        assert JobJournal(wal).replay() == []


class TestHappyPath:
    def test_submit_poll_result_round_trip(self, server):
        status, receipt, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 202
        job_id = receipt["id"]
        deadline = time.time() + 60
        while time.time() < deadline:
            status, job, _ = server.dispatch("GET", f"/v1/jobs/{job_id}", None)
            assert status == 200
            if job["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.02)
        assert job["status"] == "done"
        (key,) = receipt["units"]
        assert job["results"][key]["benchmark"] == "gcc"
        status, result, _ = server.dispatch("GET", f"/v1/results/{key}", None)
        assert status == 200
        assert result["result"] == job["results"][key]

    def test_jobs_listing(self, server):
        _post(server, json.dumps(_payload()).encode())
        status, payload, _ = server.dispatch("GET", "/v1/jobs", None)
        assert status == 200
        assert len(payload["jobs"]) == 1
        assert payload["jobs"][0]["kind"] == "run"

    def test_policies_endpoint_matches_registry(self, server):
        status, payload, _ = server.dispatch("GET", "/v1/policies", None)
        assert status == 200
        assert payload["policies"]["gated"]["defaults"]["threshold"] == 100

    def test_healthz_and_metrics(self, server):
        status, health, _ = server.dispatch("GET", "/healthz", None)
        assert status == 200 and health["status"] == "ok"
        status, metrics, _ = server.dispatch("GET", "/metrics", None)
        assert status == 200
        for field in (
            "queue_depth",
            "pending_units",
            "jobs_per_s",
            "job_latency_s",
            "engine",
            "coalesce_rate",
        ):
            assert field in metrics

    def test_cancel_endpoint(self, server):
        status, receipt, _ = _post(
            server, json.dumps(_payload(instructions=500_000)).encode()
        )
        job_id = receipt["id"]
        status, payload, _ = server.dispatch(
            "POST", f"/v1/jobs/{job_id}/cancel", None
        )
        assert status == 200
        assert payload["status"] == "cancelled"
        # Idempotent.
        status, payload, _ = server.dispatch(
            "POST", f"/v1/jobs/{job_id}/cancel", None
        )
        assert status == 200 and payload["status"] == "cancelled"

    def test_draining_healthz_is_503(self, tmp_path):
        server = ServiceServer(engine=SimEngine(fast=True))
        server.start()
        server._draining.set()
        status, payload, _ = server.dispatch("GET", "/healthz", None)
        assert status == 503 and payload["status"] == "draining"
        status, _, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 503
        server.stop()


class TestOverHttp:
    def test_real_http_round_trip_and_coalescing(self, server):
        client = ServiceClient(server.url)
        config = SimulationConfig(benchmark="gcc", n_instructions=400)
        first = client.submit_run(config)
        second = client.submit_run(config)
        assert second["coalesced"] + second["cached"] == 1
        job = client.wait(first["id"], timeout=60)
        other = client.wait(second["id"], timeout=60)
        (key,) = first["units"]
        assert job["results"][key] == other["results"][key]

    def test_http_validation_error_carries_server_message(self, server):
        client = ServiceClient(server.url, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(_payload(benchmark="nope"))
        assert excinfo.value.status == 422
        assert "unknown benchmark" in str(excinfo.value)

    def test_oversized_body_is_413(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=b"x",
            method="POST",
            headers={"Content-Length": str(64 * 1024 * 1024)},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413


class TestRobustnessMetrics:
    """Satellite: /v1/metrics surfaces the hardened paths' counters."""

    def _wait_terminal(self, server, job_id, timeout=60.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, job, _ = server.dispatch("GET", f"/v1/jobs/{job_id}", None)
            assert status == 200
            if job["status"] in ("done", "failed", "cancelled", "poisoned"):
                return job
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} not terminal after {timeout}s")

    def test_metrics_expose_robustness_counters(self, server):
        status, metrics, _ = server.dispatch("GET", "/metrics", None)
        assert status == 200
        for field in (
            "retries_total",
            "quarantined_units",
            "pool_rebuilds",
            "store_corrupt_entries",
        ):
            assert metrics[field] == 0

    def test_store_corruption_surfaces_in_metrics(self, server):
        status, receipt, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 202
        self._wait_terminal(server, receipt["id"])
        (key,) = receipt["units"]
        store = server.engine.store
        store._key_path(key).write_text("{torn", encoding="utf-8")
        assert store.get_payload(key) is None  # quarantined on read
        status, metrics, _ = server.dispatch("GET", "/metrics", None)
        assert metrics["store_corrupt_entries"] == 1

    def test_unit_quarantine_surfaces_in_metrics(self, server):
        def boom(*args, **kwargs):
            raise RuntimeError("executor death")

        server.engine.run_many = boom
        status, receipt, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 202
        job = self._wait_terminal(server, receipt["id"])
        assert job["status"] == "poisoned"
        status, metrics, _ = server.dispatch("GET", "/metrics", None)
        assert metrics["quarantined_units"] == 1
        # max_unit_failures=3: two retries absorbed before quarantine.
        assert metrics["retries_total"] >= 2

    def test_new_stats_keys_do_not_skew_cache_hit_rate(self, server):
        status, receipt, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 202
        self._wait_terminal(server, receipt["id"])
        status, metrics, _ = server.dispatch("GET", "/metrics", None)
        engine = metrics["engine"]
        lookups = (
            engine["memory_hits"] + engine["store_hits"] + engine["computed"]
        )
        # One computed lookup, zero hits: the robustness counters must
        # not appear in the hit-rate denominator.
        assert lookups == 1
        assert metrics["engine_cache_hit_rate"] == 0.0


class TestInjectedServiceFaults:
    """Failpoints at the HTTP boundary and the journal's write path."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro import faults

        faults.clear()
        yield
        faults.clear()

    def test_journal_write_failure_rejects_job_with_503(self, server):
        from repro import faults

        faults.install("journal.append=error:n=1")
        status, payload, headers = _post(
            server, json.dumps(_payload()).encode()
        )
        assert status == 503
        assert "not admitted" in payload["error"]
        assert headers.get("Retry-After") == "1"
        faults.clear()
        # The rejected job left no trace: a retry admits cleanly and
        # the journal replays nothing spurious after a restart.
        status, receipt, _ = _post(server, json.dumps(_payload()).encode())
        assert status == 202

    def test_injected_5xx_responses_are_absorbed_by_client_retries(self, server):
        from repro import faults

        faults.install("server.response=error:n=1")
        client = ServiceClient(server.url, retries=3, backoff=0.01)
        assert client.healthz()["status"] == "ok"

    def test_injected_dropped_connection_is_absorbed_by_client_retries(self, server):
        from repro import faults

        faults.install("server.response=drop:n=1")
        client = ServiceClient(server.url, retries=3, backoff=0.01)
        assert client.healthz()["status"] == "ok"
