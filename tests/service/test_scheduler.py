"""Scheduler behaviour: execution, timeouts, cancellation salvage, drain."""

from __future__ import annotations

import threading
import time

from repro.service.jobs import Job
from repro.service.queue import JobBoard
from repro.service.scheduler import Scheduler
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine
from repro.sim.store import ResultStore


def _job(benchmarks, instructions=400, priority=0, timeout_s=None, seed=1):
    configs = [
        SimulationConfig(benchmark=name, n_instructions=instructions, seed=seed)
        for name in benchmarks
    ]
    return Job(
        kind="batch",
        configs=configs,
        labels=list(benchmarks),
        priority=priority,
        timeout_s=timeout_s,
    )


def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestExecution:
    def test_jobs_execute_and_complete(self, tmp_path):
        engine = SimEngine(fast=True, store=tmp_path / "store")
        board = JobBoard(store=engine.store)
        scheduler = Scheduler(board, engine)
        scheduler.start()
        try:
            job = _job(["gcc", "art"])
            board.submit(job)
            assert _wait_for(lambda: job.status == "done")
            for key in job.unit_keys:
                assert board.result_payload(key) is not None
        finally:
            scheduler.stop()
            engine.close()

    def test_coalesced_jobs_complete_through_one_execution(self, tmp_path):
        engine = SimEngine(fast=True, store=tmp_path / "store")
        board = JobBoard(store=engine.store)
        scheduler = Scheduler(board, engine)
        # Submit before starting the scheduler so both attach to the
        # same pending unit.
        first = _job(["gcc"])
        second = _job(["gcc"])
        board.submit(first)
        board.submit(second)
        scheduler.start()
        try:
            assert _wait_for(lambda: first.status == "done")
            assert _wait_for(lambda: second.status == "done")
            assert engine.stats["computed"] == 1  # one execution, two jobs
        finally:
            scheduler.stop()
            engine.close()

    def test_persistent_execution_failure_poisons_job_with_message(self, tmp_path):
        engine = SimEngine(fast=True)
        board = JobBoard()
        scheduler = Scheduler(board, engine, max_unit_failures=3)

        def boom(*args, **kwargs):
            raise RuntimeError("worker exploded")

        engine.run_many = boom
        scheduler.start()
        try:
            job = _job(["gcc"])
            board.submit(job)
            # The unit is retried up to the failure limit, then
            # quarantined; its job lands in the distinct terminal state.
            assert _wait_for(lambda: job.status == "poisoned")
            assert "worker exploded" in job.error
            assert "quarantined" in job.error
        finally:
            scheduler.stop()

    def test_transient_execution_failure_retries_to_done(self, tmp_path):
        engine = SimEngine(fast=True, store=tmp_path / "store")
        board = JobBoard(store=engine.store)
        scheduler = Scheduler(board, engine, max_unit_failures=3)
        real_run_many = engine.run_many
        calls = []

        def flaky(configs, **kwargs):
            calls.append(len(configs))
            if len(calls) < 3:
                raise RuntimeError("transient pool hiccup")
            return real_run_many(configs, **kwargs)

        engine.run_many = flaky
        scheduler.start()
        try:
            job = _job(["gcc"])
            board.submit(job)
            assert _wait_for(lambda: job.status == "done")
            assert len(calls) == 3  # two failures absorbed, third ran
        finally:
            scheduler.stop()
            engine.close()


class TestTimeouts:
    def test_job_timeout_cancels_execution(self, tmp_path):
        engine = SimEngine(fast=True)
        board = JobBoard()
        scheduler = Scheduler(board, engine)
        scheduler.start()
        try:
            job = _job(
                ["gcc", "art", "mcf", "equake"],
                instructions=500_000,
                timeout_s=0.4,
            )
            board.submit(job)
            assert _wait_for(lambda: job.status == "cancelled", timeout=120)
        finally:
            scheduler.stop()
            engine.close()

    def test_already_expired_job_cancels_without_executing(self, tmp_path):
        engine = SimEngine(fast=True)
        board = JobBoard()
        scheduler = Scheduler(board, engine)
        job = _job(["gcc"], timeout_s=0.05)
        board.submit(job)
        time.sleep(0.2)  # expire while no scheduler is running
        scheduler.start()
        try:
            assert _wait_for(lambda: job.status == "cancelled")
            assert engine.stats["computed"] == 0
        finally:
            scheduler.stop()


class TestCancellationSalvage:
    def test_cancelled_execution_requeues_units_other_jobs_need(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = SimEngine(fast=True, store=store)
        board = JobBoard(store=store)
        scheduler = Scheduler(board, engine)
        # Heavy job and a duplicate rider on the same units.
        heavy = _job(["gcc", "art"], instructions=400_000, seed=5)
        rider = _job(["gcc", "art"], instructions=400_000, seed=5)
        board.submit(heavy)
        board.submit(rider)
        scheduler.start()
        try:
            # Let the execution start, then cancel the owner.
            assert _wait_for(lambda: heavy.status == "running")
            time.sleep(0.1)
            board.cancel(heavy.id)
            assert _wait_for(lambda: heavy.status == "cancelled", timeout=120)
            # The rider must still finish (salvaged or re-executed).
            assert _wait_for(lambda: rider.status == "done", timeout=300)
        finally:
            scheduler.stop()
            engine.close()


class TestDrain:
    def test_stop_is_idempotent_and_board_closes(self):
        engine = SimEngine(fast=True)
        board = JobBoard()
        scheduler = Scheduler(board, engine)
        scheduler.start()
        scheduler.stop()
        scheduler.stop()
        assert board.pop(timeout=0.05) is None
