"""Differential equivalence: the fast path is bit-identical to the reference.

The batched kernel (:mod:`repro.sim.fastpath`) is only allowed to exist
because it changes *nothing*: for every configuration,
``execute_run_fast(config).to_dict() == execute_run(config).to_dict()``
exactly — integer cycle counts, float energy sums, gap lists, all of it.
These tests pin that contract on a policy x benchmark x subarray-size
grid plus the scenario and trace-replay workloads.
"""

from __future__ import annotations

import pytest

from repro.core.registry import PolicySpec, policy_names
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run, execute_run_fast
from repro.sim.fastpath import clear_trace_cache, compile_workload
from repro.workloads.tracefile import record_benchmark

#: Kept small: equivalence is binary, not asymptotic, so short runs that
#: still exercise misses, replays and policy toggles are enough.
_INSTRUCTIONS = 2500


@pytest.fixture(autouse=True)
def _fresh_traces():
    clear_trace_cache()
    yield
    clear_trace_cache()


def assert_identical(config: SimulationConfig) -> None:
    reference = execute_run(config)
    fast = execute_run_fast(config)
    assert fast.to_dict() == reference.to_dict()


@pytest.mark.parametrize("policy", policy_names())
@pytest.mark.parametrize("benchmark_name", ["gcc", "art", "health"])
def test_policy_benchmark_grid(policy: str, benchmark_name: str) -> None:
    assert_identical(
        SimulationConfig(
            benchmark=benchmark_name,
            dcache=policy,
            icache=policy,
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize("subarray_bytes", [256, 1024, 4096])
@pytest.mark.parametrize("feature_size_nm", [180, 70])
def test_subarray_and_node_grid(subarray_bytes: int, feature_size_nm: int) -> None:
    assert_identical(
        SimulationConfig(
            benchmark="vortex",
            dcache=PolicySpec("gated", {"threshold": 150}),
            icache="gated",
            subarray_bytes=subarray_bytes,
            feature_size_nm=feature_size_nm,
            n_instructions=_INSTRUCTIONS,
        )
    )


def test_mixed_policies_and_seed() -> None:
    assert_identical(
        SimulationConfig(
            benchmark="mcf",
            dcache="gated-predecode",
            icache="on-demand",
            seed=7,
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize("l2_policy", policy_names())
@pytest.mark.parametrize("benchmark_name", ["gcc", "art"])
def test_l2_policy_grid(l2_policy: str, benchmark_name: str) -> None:
    # The flat L2 stage must stay bit-identical under every policy,
    # including the precharge penalties it folds into L1 miss latencies.
    assert_identical(
        SimulationConfig(
            benchmark=benchmark_name,
            dcache="gated",
            icache="gated",
            l2=l2_policy,
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize("l1_policy", ["static", "on-demand", "gated-predecode"])
@pytest.mark.parametrize(
    "l2_spec",
    [PolicySpec("gated", {"threshold": 500}), PolicySpec("oracle")],
    ids=lambda spec: spec.name,
)
def test_l1_l2_cross_grid(l1_policy: str, l2_spec: PolicySpec) -> None:
    assert_identical(
        SimulationConfig(
            benchmark="health",
            dcache=l1_policy,
            icache=l1_policy,
            l2=l2_spec,
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize("l2_subarray_bytes", [4096, 16384])
def test_l2_subarray_granularity(l2_subarray_bytes: int) -> None:
    assert_identical(
        SimulationConfig(
            benchmark="vortex",
            dcache="gated",
            icache="gated",
            l2=PolicySpec("gated", {"threshold": 500}),
            l2_subarray_bytes=l2_subarray_bytes,
            n_instructions=_INSTRUCTIONS,
        )
    )


def test_writeback_traffic_is_identical() -> None:
    # art thrashes the L1D with stores, maximising dirty evictions; the
    # propagated writebacks must hit the L2 identically on both paths.
    config = SimulationConfig(
        benchmark="art",
        dcache="gated",
        icache="gated",
        l2=PolicySpec("gated", {"threshold": 500}),
        n_instructions=_INSTRUCTIONS,
    )
    reference = execute_run(config)
    fast = execute_run_fast(config)
    assert fast.to_dict() == reference.to_dict()
    assert reference.pipeline.dcache_access_count > 0
    assert reference.l2_accesses > 0


@pytest.mark.parametrize(
    "scenario", ["mix:gcc+mcf@400", "phases:gcc+art@300"]
)
def test_scenario_workloads(scenario: str) -> None:
    assert_identical(
        SimulationConfig(
            benchmark=scenario,
            dcache="gated",
            icache="gated",
            l2=PolicySpec("gated", {"threshold": 500}),
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize(
    "scenario",
    [
        "mix:(phases:gcc+mcf@300)*2+vortex@250",
        "mix:(mix:gcc+gcc@150)+gcc@200",
        "mix:gcc~scale=0.25~slab=24+art~scale=2@350",
        "phases:(mix:art+health@200)+gcc@400",
    ],
)
def test_nested_scenario_workloads(scenario: str) -> None:
    assert_identical(
        SimulationConfig(
            benchmark=scenario,
            dcache="gated",
            icache="gated",
            l2=PolicySpec("gated", {"threshold": 500}),
            n_instructions=_INSTRUCTIONS,
        )
    )


@pytest.mark.parametrize("fuzz_seed", range(25))
def test_fuzz_seed_block(fuzz_seed: int) -> None:
    # The fixed 25-seed regression block: generated scenarios nobody
    # hand-wrote, with every cache level precharge-gated so both L1 and
    # L2 policy machinery is exercised.  `repro fuzz` explores beyond
    # this block; any mismatch it ever finds lands in tests/fuzz_corpus
    # (replayed by test_fuzz_corpus.py) rather than here.
    assert_identical(
        SimulationConfig(
            benchmark=f"fuzz:{fuzz_seed}",
            dcache="gated",
            icache="gated",
            l2=PolicySpec("gated", {"threshold": 500}),
            n_instructions=_INSTRUCTIONS,
        )
    )


def test_trace_replay_workload(tmp_path) -> None:
    path = tmp_path / "gcc.trace.gz"
    record_benchmark(path, "gcc", 4000, seed=3)
    # More ops recorded than simulated: normal replay.
    assert_identical(
        SimulationConfig(
            benchmark=f"trace:{path}",
            dcache="gated",
            icache="oracle",
            seed=3,
            n_instructions=_INSTRUCTIONS,
        )
    )


def test_exhausted_trace_drains_identically(tmp_path) -> None:
    # Fewer ops recorded than requested: both paths must drain the
    # pipeline early the same way.
    path = tmp_path / "short.trace.gz"
    record_benchmark(path, "mesa", 800, seed=2)
    config = SimulationConfig(
        benchmark=f"trace:{path}",
        dcache="gated",
        icache="gated",
        n_instructions=5000,
    )
    reference = execute_run(config)
    fast = execute_run_fast(config)
    assert fast.to_dict() == reference.to_dict()
    assert reference.pipeline.committed_instructions < 5000


def test_engine_cache_and_store_not_stale_after_rerecord(tmp_path) -> None:
    # The engine memo and the on-disk store key trace: configs on file
    # identity too, so a re-recorded path is recomputed, not resumed.
    import os

    path = tmp_path / "w.trace.gz"
    record_benchmark(path, "gcc", 1500, seed=1)
    config = SimulationConfig(benchmark=f"trace:{path}", n_instructions=1000)
    engine = SimEngine(store=str(tmp_path / "store"))
    first = engine.run(config)
    record_benchmark(path, "art", 1500, seed=9)
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
    second = engine.run(config)
    assert second.to_dict() != first.to_dict()
    # A fresh engine sharing only the store must also see the new file.
    resumed = SimEngine(store=str(tmp_path / "store")).run(config)
    assert resumed.to_dict() == second.to_dict()


def test_rerecorded_trace_file_is_not_served_stale(tmp_path) -> None:
    # The compiled-trace cache keys trace: names on file identity, so
    # re-recording the same path must invalidate the cached columns.
    import os

    path = tmp_path / "w.trace.gz"
    record_benchmark(path, "gcc", 1500, seed=1)
    config = SimulationConfig(
        benchmark=f"trace:{path}", n_instructions=1000
    )
    first = execute_run_fast(config)
    record_benchmark(path, "art", 1500, seed=9)
    # Defend against filesystems with coarse mtime granularity.
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
    second = execute_run_fast(config)
    assert second.to_dict() == execute_run(config).to_dict()
    assert second.to_dict() != first.to_dict()


def test_compiled_trace_matches_generator_stream() -> None:
    import itertools

    from repro.workloads.synthetic import make_workload

    compiled = compile_workload("equake", seed=4)
    assert compiled.ensure(999)
    stream = make_workload("equake", seed=4).instructions()
    for index, uop in enumerate(itertools.islice(stream, 1000)):
        assert compiled.micro_op(index) == uop


def test_engine_fast_flag_shares_cache_with_reference() -> None:
    engine = SimEngine()
    config = SimulationConfig(benchmark="gcc", n_instructions=1200)
    reference = engine.run(config, fast=False)
    assert engine.stats["computed"] == 1
    fast = engine.run(config, fast=True)
    # Identical results mean identical cache keys: no recompute.
    assert engine.stats["computed"] == 1
    assert fast.to_dict() == reference.to_dict()


def test_fast_engine_sweep_matches_reference_sweep() -> None:
    base = SimulationConfig(
        benchmark="gcc", dcache="gated", icache="gated", n_instructions=1200
    )
    names = ["gcc", "ammp", "treeadd"]
    reference = SimEngine().sweep(base, benchmarks=names)
    fast = SimEngine(fast=True).sweep(base, benchmarks=names)
    for name in names:
        assert fast[name].to_dict() == reference[name].to_dict()


def test_livelock_bound_raises_identically() -> None:
    from dataclasses import replace

    from repro.cpu.pipeline import PipelineConfig

    config = SimulationConfig(
        benchmark="art",
        n_instructions=200,
        pipeline=PipelineConfig(max_cycles_per_instruction=1),
    )
    with pytest.raises(RuntimeError) as reference_error:
        execute_run(config)
    with pytest.raises(RuntimeError) as fast_error:
        execute_run_fast(config)
    assert str(reference_error.value) == str(fast_error.value)
