"""JSON round-trip tests for configs, stats, energy reports and results."""

import json

from repro.core.registry import PolicySpec
from repro.cpu.pipeline import PipelineConfig
from repro.cpu.stats import PipelineStats
from repro.energy.cache_energy import CacheEnergyReport
from repro.sim import RunResult, SimulationConfig


class TestRunResultRoundTrip:
    def test_json_round_trip_is_exact(self, small_baseline_run):
        text = small_baseline_run.to_json()
        rebuilt = RunResult.from_json(text)
        assert rebuilt == small_baseline_run
        # And the dict form is stable across a second cycle.
        assert rebuilt.to_dict() == small_baseline_run.to_dict()

    def test_gated_run_round_trip(self, small_gated_run):
        rebuilt = RunResult.from_dict(
            json.loads(json.dumps(small_gated_run.to_dict()))
        )
        assert rebuilt == small_gated_run
        assert rebuilt.energy.dcache_relative_discharge == (
            small_gated_run.energy.dcache_relative_discharge
        )

    def test_derived_metrics_survive(self, small_baseline_run):
        rebuilt = RunResult.from_json(small_baseline_run.to_json())
        assert rebuilt.ipc == small_baseline_run.ipc
        assert rebuilt.summary() == small_baseline_run.summary()


class TestComponentRoundTrips:
    def test_pipeline_stats(self):
        stats = PipelineStats(cycles=10, committed_instructions=7, branches=2)
        assert PipelineStats.from_dict(json.loads(json.dumps(stats.to_dict()))) == stats

    def test_energy_report(self, small_gated_run):
        report = small_gated_run.energy
        rebuilt = CacheEnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.processor is not None

    def test_energy_report_without_processor(self, small_gated_run):
        report = CacheEnergyReport(
            dcache=small_gated_run.energy.dcache,
            icache=small_gated_run.energy.icache,
        )
        rebuilt = CacheEnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.processor is None


class TestConfigRoundTrip:
    def test_default_config(self):
        config = SimulationConfig()
        rebuilt = SimulationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_full_config(self):
        config = SimulationConfig(
            benchmark="art",
            dcache=PolicySpec("gated-predecode", {"threshold": 30}),
            icache=PolicySpec("gated", {"threshold": 70}),
            feature_size_nm=100,
            subarray_bytes=4096,
            n_instructions=12_345,
            seed=9,
            pipeline=PipelineConfig(width=4, rob_entries=64),
        )
        rebuilt = SimulationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.cache_key() == config.cache_key()
