"""JSON round-trip tests for configs, stats, energy reports and results."""

import json

from repro.core.registry import PolicySpec
from repro.cpu.pipeline import PipelineConfig
from repro.cpu.stats import PipelineStats
from repro.energy.cache_energy import CacheEnergyReport
from repro.sim import RunResult, SimulationConfig


class TestRunResultRoundTrip:
    def test_json_round_trip_is_exact(self, small_baseline_run):
        text = small_baseline_run.to_json()
        rebuilt = RunResult.from_json(text)
        assert rebuilt == small_baseline_run
        # And the dict form is stable across a second cycle.
        assert rebuilt.to_dict() == small_baseline_run.to_dict()

    def test_gated_run_round_trip(self, small_gated_run):
        rebuilt = RunResult.from_dict(
            json.loads(json.dumps(small_gated_run.to_dict()))
        )
        assert rebuilt == small_gated_run
        assert rebuilt.energy.dcache_relative_discharge == (
            small_gated_run.energy.dcache_relative_discharge
        )

    def test_derived_metrics_survive(self, small_baseline_run):
        rebuilt = RunResult.from_json(small_baseline_run.to_json())
        assert rebuilt.ipc == small_baseline_run.ipc
        assert rebuilt.summary() == small_baseline_run.summary()


class TestComponentRoundTrips:
    def test_pipeline_stats(self):
        stats = PipelineStats(cycles=10, committed_instructions=7, branches=2)
        assert PipelineStats.from_dict(json.loads(json.dumps(stats.to_dict()))) == stats

    def test_energy_report(self, small_gated_run):
        report = small_gated_run.energy
        rebuilt = CacheEnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.processor is not None

    def test_energy_report_without_processor(self, small_gated_run):
        report = CacheEnergyReport(
            dcache=small_gated_run.energy.dcache,
            icache=small_gated_run.energy.icache,
        )
        rebuilt = CacheEnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.processor is None


class TestConfigRoundTrip:
    def test_default_config(self):
        config = SimulationConfig()
        rebuilt = SimulationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_full_config(self):
        config = SimulationConfig(
            benchmark="art",
            dcache=PolicySpec("gated-predecode", {"threshold": 30}),
            icache=PolicySpec("gated", {"threshold": 70}),
            feature_size_nm=100,
            subarray_bytes=4096,
            n_instructions=12_345,
            seed=9,
            pipeline=PipelineConfig(width=4, rob_entries=64),
            l2=PolicySpec("gated", {"threshold": 500}),
            l2_subarray_bytes=8192,
        )
        rebuilt = SimulationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.cache_key() == config.cache_key()


class TestL2BackwardCompatibility:
    """Pre-L2 payloads and keys stay valid after the L2 became policy-capable."""

    def test_default_l2_is_omitted_from_serialised_config(self):
        data = SimulationConfig().to_dict()
        assert "l2" not in data and "l2_subarray_bytes" not in data

    def test_non_default_l2_is_serialised(self):
        data = SimulationConfig(l2="gated").to_dict()
        assert data["l2"] == {"name": "gated", "params": {}}

    def test_legacy_config_payload_loads_with_static_l2(self):
        data = SimulationConfig().to_dict()
        data.pop("l2", None)
        config = SimulationConfig.from_dict(data)
        assert config.l2.name == "static"
        assert config.l2_subarray_bytes is None

    def test_explicit_static_l2_shares_the_legacy_cache_key(self):
        assert (
            SimulationConfig(l2="static").cache_key()
            == SimulationConfig().cache_key()
        )
        assert (
            SimulationConfig(l2="gated").cache_key()
            != SimulationConfig().cache_key()
        )

    def test_store_digest_unchanged_for_default_l2(self):
        from repro.sim.store import ResultStore

        default = ResultStore.key_for(SimulationConfig())
        explicit = ResultStore.key_for(SimulationConfig(l2="static"))
        gated = ResultStore.key_for(SimulationConfig(l2=PolicySpec("gated", {"threshold": 500})))
        assert default == explicit
        assert gated != default

    def test_legacy_run_result_payload_loads_with_defaults(self, small_baseline_run):
        data = small_baseline_run.to_dict()
        for key in list(data):
            if key.startswith("l2_"):
                del data[key]
        data["energy"] = dict(data["energy"])
        data["energy"].pop("l2", None)
        rebuilt = RunResult.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.l2_policy == "static"
        assert rebuilt.l2_accesses == 0
        assert rebuilt.l2_gaps == []
        assert rebuilt.energy.l2 is None
        assert rebuilt.energy.l2_relative_discharge == 1.0

    def test_l2_fields_round_trip_exactly(self):
        from repro.sim import run_simulation

        config = SimulationConfig(
            benchmark="gcc",
            l2=PolicySpec("gated", {"threshold": 500}),
            n_instructions=3_000,
        )
        result = run_simulation(config)
        rebuilt = RunResult.from_json(result.to_json())
        assert rebuilt == result
        assert rebuilt.l2_policy == "gated"
        assert rebuilt.energy.l2 is not None
        assert rebuilt.l2_accesses > 0
