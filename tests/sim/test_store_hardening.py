"""Store integrity: verify-on-read, quarantine, legacy entries, torn writes."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.sim.config import SimulationConfig
from repro.sim.engine import execute_run_fast
from repro.sim.store import ResultStore, _payload_digest


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def _config(benchmark="gcc", instructions=400):
    return SimulationConfig(benchmark=benchmark, n_instructions=instructions, seed=1)


def _populate(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = _config()
    result = execute_run_fast(config)
    store.put(config, result)
    return store, config, result


class TestVerifyOnRead:
    def test_truncated_json_is_a_miss_not_a_traceback(self, tmp_path):
        store, config, _ = _populate(tmp_path)
        path = store._key_path(store.key_for(config))
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        # A torn entry reads as a cache miss...
        assert store.get(config) is None
        assert store.stats["corrupt_entries"] == 1
        # ...and is quarantined out of the store's namespace, with the
        # bytes kept beside it for the post-mortem.
        assert not path.exists()
        sidecar = path.with_name(path.name + ".corrupt")
        assert sidecar.exists()
        assert sidecar.read_text(encoding="utf-8") == text[: len(text) // 2]

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        store, config, _ = _populate(tmp_path)
        path = store._key_path(store.key_for(config))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["config"]["seed"] = 999  # bit-rot: content no longer matches digest
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(config) is None
        assert store.stats["corrupt_entries"] == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_quarantined_entry_is_invisible_to_iteration(self, tmp_path):
        store, config, _ = _populate(tmp_path)
        path = store._key_path(store.key_for(config))
        path.write_text("{not json", encoding="utf-8")
        assert store.get(config) is None
        # The .corrupt sidecar escapes the *.json namespace entirely.
        assert store.keys() == []
        assert list(store.iter_results()) == []

    def test_recompute_after_quarantine_round_trips(self, tmp_path):
        store, config, result = _populate(tmp_path)
        path = store._key_path(store.key_for(config))
        path.write_text("garbage", encoding="utf-8")
        assert store.get(config) is None
        store.put(config, result)  # the engine would recompute and re-put
        fetched = store.get(config)
        assert fetched is not None
        assert fetched.to_dict() == result.to_dict()

    def test_legacy_entry_without_digest_still_reads(self, tmp_path):
        # Entries written before digests existed must stay readable.
        store, config, result = _populate(tmp_path)
        path = store._key_path(store.key_for(config))
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["sha256"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        fetched = store.get(config)
        assert fetched is not None
        assert fetched.to_dict() == result.to_dict()
        assert store.stats["corrupt_entries"] == 0

    def test_digest_covers_the_whole_payload(self, tmp_path):
        store, config, _ = _populate(tmp_path)
        payload = store.get_payload(store.key_for(config))
        digest = payload.pop("sha256")
        assert digest == _payload_digest(payload)


class TestInjectedWriteFaults:
    def test_torn_put_quarantines_on_next_read(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = _config()
        result = execute_run_fast(config)
        faults.install("store.put=torn:n=1")
        store.put(config, result)
        faults.clear()
        assert store.get(config) is None
        assert store.stats["corrupt_entries"] == 1
        # The slot is clean again: a retried put fully recovers.
        store.put(config, result)
        assert store.get(config).to_dict() == result.to_dict()

    def test_corrupt_put_fails_digest_verification(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = _config()
        result = execute_run_fast(config)
        faults.install("store.put=corrupt:n=1")
        store.put(config, result)
        faults.clear()
        assert store.get(config) is None
        assert store.stats["corrupt_entries"] == 1

    def test_error_put_raises_oserror(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = _config()
        result = execute_run_fast(config)
        faults.install("store.put=error:n=1")
        with pytest.raises(OSError):
            store.put(config, result)
        faults.clear()
        assert store.get(config) is None  # nothing half-written

    def test_injected_get_error_is_a_miss(self, tmp_path):
        store, config, result = _populate(tmp_path)
        faults.install("store.get=error:n=1")
        assert store.get(config) is None  # fault: read fails → miss
        assert store.get(config) is not None  # next read is clean
        assert store.stats["corrupt_entries"] == 0  # no quarantine: I/O, not rot
