"""The compiled-trace caches: typed columns, disk persistence, eviction.

Pins the PR-4 trace-cache contract:

* numpy-backed (``from_columns`` over ``int64`` arrays) and pure-Python
  compiled traces yield identical ``micro_op()`` streams *and* identical
  precomputed predictor columns (property-based);
* a trace persisted to the on-disk ``.npz`` cache round-trips — a fresh
  in-memory cache loads it and produces bit-identical runs;
* corrupted, truncated or key-mismatched ``.npz`` entries are evicted
  and recompiled instead of poisoning results;
* ``clear_trace_cache()`` clears the disk cache too, and re-recorded
  ``trace:`` files never serve stale entries (file identity is part of
  the key, hence of the disk filename);
* everything still works with numpy absent (disk cache disabled).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.fastpath as fastpath
from repro.sim.config import SimulationConfig
from repro.sim.engine import execute_run, execute_run_fast
from repro.sim.fastpath import (
    CompiledTrace,
    clear_trace_cache,
    compiled_trace_for,
    set_trace_cache_dir,
    trace_cache_dir,
)
from repro.workloads.trace import (
    OP_ALU,
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    OP_TYPES,
    MicroOp,
)
from repro.workloads.tracefile import record_benchmark

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI leg
    numpy = None

requires_numpy = pytest.mark.skipif(
    numpy is None, reason="typed-array export and the .npz cache need numpy"
)


@pytest.fixture()
def disk_cache(tmp_path):
    """Point the disk cache at a private directory for one test."""
    previous = fastpath._DISK_DIR_OVERRIDE
    set_trace_cache_dir(tmp_path)
    clear_trace_cache(disk=False)
    yield tmp_path
    clear_trace_cache(disk=False)
    fastpath._DISK_DIR_OVERRIDE = previous


def _config(benchmark="gcc", n=1_500):
    return SimulationConfig(
        benchmark=benchmark, dcache="gated", icache="gated", n_instructions=n
    )


# ----------------------------------------------------------------------
# Typed-array columns
# ----------------------------------------------------------------------
_micro_ops = st.builds(
    MicroOp,
    op_type=st.sampled_from(OP_TYPES),
    pc=st.integers(min_value=0, max_value=1 << 22).map(lambda v: v * 4),
    dest=st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    src1=st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    src2=st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    address=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 24)),
    base_address=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 24)),
    taken=st.booleans(),
    target=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 24)),
)


@requires_numpy
class TestTypedColumns:
    @given(ops=st.lists(_micro_ops, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_pure_python_columns_equal(self, ops):
        """int64-array-backed and list-backed traces are indistinguishable."""
        compiled = CompiledTrace(iter(ops))
        compiled.ensure(len(ops))
        arrays = compiled.column_arrays()
        assert all(a.dtype == numpy.int64 for a in arrays.values())
        rebuilt = CompiledTrace.from_columns(arrays, exhausted=True)
        assert rebuilt.rows == compiled.rows == len(ops)
        for index in range(len(ops)):
            assert rebuilt.micro_op(index) == compiled.micro_op(index) == ops[index]
        # The derived predictor / fetch-batching columns are pure
        # functions of the base columns, so they must match too.
        assert rebuilt.mispred == compiled.mispred
        assert rebuilt.br_pref == compiled.br_pref
        assert rebuilt.mp_pref == compiled.mp_pref
        assert rebuilt.terms == compiled.terms
        assert rebuilt._bimodal == compiled._bimodal
        assert rebuilt._gshare == compiled._gshare
        assert rebuilt._chooser == compiled._chooser
        assert rebuilt._history == compiled._history

    def test_from_columns_rejects_mismatched_lengths(self):
        compiled = CompiledTrace(iter([MicroOp(OP_ALU, pc=0)]))
        compiled.ensure(1)
        columns = {name: list(getattr(compiled, name)) for name in fastpath.COLUMN_NAMES}
        columns["pc"] = columns["pc"] + [4]
        with pytest.raises(ValueError, match="mismatched"):
            CompiledTrace.from_columns(columns, exhausted=True)

    def test_from_columns_without_source_cannot_extend(self):
        compiled = CompiledTrace(iter([MicroOp(OP_ALU, pc=0)]))
        compiled.ensure(1)
        rebuilt = CompiledTrace.from_columns(compiled.column_arrays(), exhausted=False)
        with pytest.raises(RuntimeError, match="continuation source"):
            rebuilt.ensure(5)


# ----------------------------------------------------------------------
# Disk cache round-trip
# ----------------------------------------------------------------------
@requires_numpy
class TestDiskCache:
    def test_run_persists_and_reloads(self, disk_cache):
        config = _config()
        reference = execute_run(config)
        first = execute_run_fast(config)
        entries = list(disk_cache.glob("trace-*.npz"))
        assert len(entries) == 1, "the run should persist its compiled trace"

        compiled = compiled_trace_for("gcc")
        clear_trace_cache(disk=False)  # drop memory, keep the .npz
        reloaded_trace = compiled_trace_for("gcc")
        assert reloaded_trace is not compiled
        assert reloaded_trace.rows == compiled.rows
        for name in fastpath.COLUMN_NAMES:
            assert getattr(reloaded_trace, name) == getattr(compiled, name)

        reloaded = execute_run_fast(config)
        assert first.to_dict() == reloaded.to_dict() == reference.to_dict()

    def test_loaded_prefix_extends_through_source_factory(self, disk_cache):
        short = _config(n=600)
        execute_run_fast(short)
        clear_trace_cache(disk=False)
        # Columns materialise in 8192-row chunks, so a 12k-instruction
        # run needs rows beyond the persisted prefix; the continuation
        # (fast-forwarded generator + restored predictor state) must be
        # byte-identical to an uninterrupted compile.
        longer = _config(n=12_000)
        assert execute_run_fast(longer).to_dict() == execute_run(longer).to_dict()

    def test_corrupted_entry_is_evicted_and_recompiled(self, disk_cache):
        config = _config()
        expected = execute_run_fast(config).to_dict()
        [entry] = disk_cache.glob("trace-*.npz")
        entry.write_bytes(b"this is not a zip archive")
        clear_trace_cache(disk=False)
        assert execute_run_fast(config).to_dict() == expected
        assert not entry.read_bytes().startswith(b"this is not"), (
            "the corrupted entry should have been evicted and rewritten"
        )

    def test_truncated_entry_is_evicted(self, disk_cache):
        config = _config()
        expected = execute_run_fast(config).to_dict()
        [entry] = disk_cache.glob("trace-*.npz")
        entry.write_bytes(entry.read_bytes()[:100])
        clear_trace_cache(disk=False)
        assert execute_run_fast(config).to_dict() == expected

    def test_key_mismatch_is_never_served(self, disk_cache):
        execute_run_fast(_config(benchmark="gcc"))
        [gcc_entry] = disk_cache.glob("trace-*.npz")
        clear_trace_cache(disk=False)
        # Masquerade gcc's entry under mcf's filename (a copied cache
        # dir / hash collision stand-in): the embedded key must reject it.
        mcf_path = fastpath._disk_path(fastpath._trace_cache_key("mcf", 1))
        mcf_path.write_bytes(gcc_entry.read_bytes())
        mcf_config = _config(benchmark="mcf")
        assert execute_run_fast(mcf_config).to_dict() == execute_run(mcf_config).to_dict()

    def test_clear_trace_cache_clears_disk_too(self, disk_cache):
        execute_run_fast(_config())
        assert list(disk_cache.glob("trace-*.npz"))
        clear_trace_cache()
        assert not list(disk_cache.glob("trace-*.npz"))

    def test_rerecorded_trace_file_gets_fresh_disk_entry(self, disk_cache, tmp_path):
        path = tmp_path / "w.trace.gz"
        record_benchmark(path, "gcc", 900)
        name = f"trace:{path}"
        first = execute_run_fast(_config(benchmark=name, n=700))
        # Re-record with different content at the same path.
        record_benchmark(path, "mcf", 900)
        os.utime(path, (os.path.getmtime(path) + 5,) * 2)
        clear_trace_cache(disk=False)
        rerecorded = execute_run_fast(_config(benchmark=name, n=700))
        assert rerecorded.to_dict() != first.to_dict()
        assert rerecorded.to_dict() == execute_run(_config(benchmark=name, n=700)).to_dict()

    def test_disabled_disk_cache_writes_nothing(self, disk_cache):
        set_trace_cache_dir(None)
        assert trace_cache_dir() is None
        execute_run_fast(_config())
        assert not list(disk_cache.glob("trace-*.npz"))


# ----------------------------------------------------------------------
# numpy-free fallback
# ----------------------------------------------------------------------
class TestWithoutNumpy:
    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(fastpath, "_np", None)
        clear_trace_cache(disk=False)
        yield
        clear_trace_cache(disk=False)

    def test_disk_cache_disabled(self, no_numpy, tmp_path):
        set_trace_cache_dir(tmp_path)
        try:
            assert trace_cache_dir() is None
            execute_run_fast(_config(n=600))
            assert not list(tmp_path.glob("trace-*.npz"))
        finally:
            fastpath._DISK_DIR_OVERRIDE = fastpath._UNSET

    def test_fast_path_still_bit_identical(self, no_numpy):
        config = _config(n=1_200)
        assert execute_run_fast(config).to_dict() == execute_run(config).to_dict()

    def test_pure_python_rebuild_matches(self, no_numpy):
        ops = [
            MicroOp(OP_BRANCH if i % 3 == 0 else OP_ALU, pc=4 * i,
                    taken=bool(i % 2), dest=i % 8)
            for i in range(700)
        ]
        compiled = CompiledTrace(iter(ops))
        compiled.ensure(len(ops))
        columns = {name: list(getattr(compiled, name)) for name in fastpath.COLUMN_NAMES}
        rebuilt = CompiledTrace.from_columns(columns, exhausted=True)
        assert rebuilt.br_pref == compiled.br_pref
        assert rebuilt.terms == compiled.terms
        assert [rebuilt.micro_op(i) for i in range(5)] == ops[:5]
