"""The failpoint registry: spec grammar, determinism, scheduling, no-op cost."""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


class TestSpecGrammar:
    def test_parse_roundtrips(self):
        spec = "seed=7;engine.chunk=crash:p=0.5,max=1;store.put=torn:n=2"
        plan = faults.FaultPlan.parse(spec)
        assert plan.seed == 7
        assert plan.rule_for("engine.chunk").action == "crash"
        assert plan.rule_for("engine.chunk").p == 0.5
        assert plan.rule_for("engine.chunk").max_fires == 1
        assert plan.rule_for("store.put").n == 2
        assert faults.FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()

    def test_seed_defaults_to_zero(self):
        plan = faults.FaultPlan.parse("journal.append=error")
        assert plan.seed == 0
        assert plan.rule_for("journal.append").p == 1.0

    @pytest.mark.parametrize(
        "spec",
        [
            "nosuch.site=crash",           # unknown site
            "engine.chunk=explode",        # unknown action for the site
            "engine.chunk=crash:p=2.0",    # probability out of range
            "engine.chunk=crash:n=0",      # n is 1-based
            "engine.chunk=hang:delay=60",  # delay above the hard cap
            "engine.chunk",                # missing action
            "seed=x;engine.chunk=crash",   # bad seed
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            faults.FaultPlan.parse(spec)


class TestScheduling:
    def test_inactive_registry_never_fires(self):
        for _ in range(50):
            assert faults.check("engine.chunk") is None

    def test_unlisted_site_never_fires(self):
        faults.install("engine.chunk=crash")
        assert faults.check("store.put") is None
        assert faults.check("engine.chunk") is not None

    def test_unknown_site_checked_is_an_error(self):
        # With a plan armed, a typo at a call site must fail loudly,
        # not silently never fire.
        faults.install("engine.chunk=crash")
        with pytest.raises(ValueError):
            faults.check("engine.chnk")

    def test_n_fires_exactly_on_the_nth_check(self):
        faults.install("store.put=torn:n=3")
        hits = [faults.check("store.put") is not None for _ in range(6)]
        assert hits == [False, False, True, False, False, False]

    def test_max_fires_caps_a_certain_rule(self):
        faults.install("journal.append=error:max=2")
        hits = [faults.check("journal.append") is not None for _ in range(10)]
        assert sum(hits) == 2
        assert hits[:2] == [True, True]  # p=1.0 fires immediately

    def test_probabilistic_schedule_is_seed_deterministic(self):
        spec = "seed=11;engine.chunk=crash:p=0.5"
        faults.install(spec)
        first = [faults.check("engine.chunk") is not None for _ in range(40)]
        faults.install(spec)  # reinstall resets counters and RNG
        second = [faults.check("engine.chunk") is not None for _ in range(40)]
        assert first == second
        assert 0 < sum(first) < 40  # actually probabilistic

    def test_different_seeds_give_different_schedules(self):
        faults.install("seed=1;engine.chunk=crash:p=0.5")
        one = [faults.check("engine.chunk") is not None for _ in range(40)]
        faults.install("seed=2;engine.chunk=crash:p=0.5")
        two = [faults.check("engine.chunk") is not None for _ in range(40)]
        assert one != two

    def test_sites_draw_independent_streams(self):
        # Interleaving checks of another site must not perturb a site's
        # own schedule — each site owns its RNG stream.
        spec = "seed=5;engine.chunk=crash:p=0.5;store.put=torn:p=0.5"
        faults.install(spec)
        alone = [faults.check("engine.chunk") is not None for _ in range(20)]
        faults.install(spec)
        interleaved = []
        for _ in range(20):
            faults.check("store.put")
            interleaved.append(faults.check("engine.chunk") is not None)
        assert alone == interleaved

    def test_clear_deactivates(self):
        faults.install("engine.chunk=crash")
        assert faults.active_spec() is not None
        faults.clear()
        assert faults.active_spec() is None
        assert faults.check("engine.chunk") is None


class TestTrip:
    def test_trip_raise_action_raises_fault_injected(self):
        faults.install("scheduler.unit=raise:max=1")
        with pytest.raises(faults.FaultInjected) as excinfo:
            faults.trip("scheduler.unit")
        assert excinfo.value.site == "scheduler.unit"
        faults.trip("scheduler.unit")  # max exhausted: no-op

    def test_trip_without_plan_is_a_no_op(self):
        faults.trip("engine.chunk")

    def test_env_spec_installs_on_import(self, tmp_path):
        # Subprocess activation: REPRO_FAULTS at import time arms the
        # registry — how forked/spawned workers pick up a plan.
        import os
        import subprocess
        import sys
        from pathlib import Path

        src_dir = str(Path(faults.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        env["REPRO_FAULTS"] = "seed=3;engine.chunk=crash:max=1"
        code = "from repro import faults; print(faults.active_spec())"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert out == "seed=3;engine.chunk=crash:max=1"
