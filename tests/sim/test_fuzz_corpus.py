"""Replay the committed differential-fuzz corpus (tests/fuzz_corpus/).

Every entry is a configuration that either once split the two kernels
(a minimized reproducer written by ``repro fuzz``) or pins a grammar
corner the fixed grids don't reach (a seed entry).  Tier-1 replays each
through both kernels forever: a regression on any of them is a
recurrence of a bug this repo has already shipped a fix for.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import load_corpus
from repro.sim.engine import execute_run, execute_run_fast

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"

_ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_present_and_loadable() -> None:
    # The directory ships with seed entries, so an empty load means the
    # corpus was deleted or the loader broke — both are failures.
    assert (CORPUS_DIR / "README.md").is_file()
    assert _ENTRIES, "fuzz corpus must contain at least the seed entries"


@pytest.mark.parametrize(
    "origin, config",
    _ENTRIES,
    ids=[config.benchmark for _, config in _ENTRIES],
)
def test_corpus_entry_replays_identically(origin, config) -> None:
    assert execute_run_fast(config).to_dict() == execute_run(config).to_dict()
