"""The differential fuzz driver: shrinking, corpus I/O, campaigns."""

from __future__ import annotations

import json

from repro.fuzz import (
    corpus_filename,
    fuzz_config,
    load_corpus,
    run_campaign,
    shrink_scenario,
    write_corpus_entry,
)
from repro.workloads.grammar import (
    Bench,
    iter_leaves,
    parse_scenario,
    unparse,
)


class TestShrinker:
    # The shrinker takes a pluggable predicate, so it is testable with
    # synthetic "bugs" — no real kernel divergence needed.

    def test_shrinks_to_the_buggy_benchmark(self):
        root = parse_scenario(
            "mix:(phases:gcc+mcf@300)*2+art~scale=0.5+vortex@800"
        )

        def involves_art(candidate):
            return any(
                leaf.name == "art" for leaf in iter_leaves(candidate)
            )

        minimal = shrink_scenario(root, involves_art)
        assert involves_art(minimal)
        # Two-term list with no surviving modifiers or odd quanta.
        assert len(minimal.children) == 2
        assert unparse(minimal).count("(") == 0
        assert "~" not in unparse(minimal)
        assert "*" not in unparse(minimal)

    def test_shrinks_nesting_away_when_irrelevant(self):
        root = parse_scenario("mix:(mix:gcc~slab=24+mcf@100)*3+vortex@50")

        def always(candidate):
            return True

        minimal = shrink_scenario(root, always)
        assert unparse(minimal) == "mix:gcc+mcf@2000"

    def test_keeps_structure_the_predicate_needs(self):
        root = parse_scenario("mix:(phases:gcc+mcf@300)+vortex@800")

        def needs_nesting(candidate):
            return any(
                not isinstance(child, Bench) for child in candidate.children
            )

        minimal = shrink_scenario(root, needs_nesting)
        assert needs_nesting(minimal)

    def test_result_always_parses(self):
        root = parse_scenario(
            "mix:(mix:gcc+art@77)~scale=2+health~slab=28*4+mcf@99"
        )
        minimal = shrink_scenario(root, lambda candidate: True)
        assert parse_scenario(unparse(minimal)) == minimal

    def test_attempt_budget_bounds_the_search(self):
        root = parse_scenario("mix:(mix:gcc+art@77)+health+mcf@99")
        calls = []

        def count(candidate):
            calls.append(candidate)
            return True

        shrink_scenario(root, count, max_attempts=3)
        assert len(calls) <= 3


class TestCorpusIO:
    def test_round_trip(self, tmp_path):
        config = fuzz_config("mix:gcc+mcf@400", n_instructions=1234)
        path = write_corpus_entry(tmp_path, config, origin="fuzz:9/3")
        assert path.name == corpus_filename("mix:gcc+mcf@400")
        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        origin, loaded = entries[0]
        assert origin == "fuzz:9/3"
        assert loaded == config

    def test_rewriting_the_same_reproducer_is_idempotent(self, tmp_path):
        config = fuzz_config("mix:gcc+mcf@400")
        write_corpus_entry(tmp_path, config, origin="a")
        write_corpus_entry(tmp_path, config, origin="b")
        assert len(load_corpus(tmp_path)) == 1

    def test_missing_directory_loads_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_entries_are_stable_json(self, tmp_path):
        config = fuzz_config("phases:gcc+art@300")
        path = write_corpus_entry(tmp_path, config, origin="seed")
        data = json.loads(path.read_text())
        assert set(data) == {"origin", "config"}
        assert data["config"]["benchmark"] == "phases:gcc+art@300"


class TestCampaign:
    def test_clean_campaign_report(self, tmp_path):
        report = run_campaign(
            budget=2,
            seed_base=0,
            depth=2,
            n_instructions=600,
            corpus_dir=tmp_path,
        )
        assert report["budget"] == 2
        assert report["mismatches"] == 0
        assert len(report["results"]) == 2
        assert all(r["status"] == "match" for r in report["results"])
        # No mismatch, no corpus writes.
        assert load_corpus(tmp_path) == []

    def test_progress_callback_sees_every_result(self):
        seen = []
        run_campaign(
            budget=3, depth=1, n_instructions=400, progress=seen.append
        )
        assert [r.name for r in seen] == ["fuzz:0/1", "fuzz:1/1", "fuzz:2/1"]

    def test_seed_base_shifts_the_block(self):
        report = run_campaign(budget=1, seed_base=7, depth=1, n_instructions=400)
        assert report["results"][0]["name"] == "fuzz:7/1"
