"""Engine recovery under injected faults: crashes, raises, store errors."""

from __future__ import annotations

import pytest

from repro import faults
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run_fast


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def _configs(benchmarks=("gcc", "art", "mcf", "equake"), instructions=400):
    return [
        SimulationConfig(benchmark=name, n_instructions=instructions, seed=1)
        for name in benchmarks
    ]


def _baseline(configs):
    return [execute_run_fast(config).to_dict() for config in configs]


class TestWorkerCrashRecovery:
    def test_worker_crash_rebuilds_pool_and_finishes_identically(self, tmp_path):
        configs = _configs()
        expected = _baseline(configs)
        engine = SimEngine(workers=2, fast=True, store=tmp_path / "store")
        try:
            faults.install("seed=3;engine.chunk=crash:p=1.0,max=2")
            results = engine.run_many(configs)
        finally:
            faults.clear()
            engine.close()
        assert [r.to_dict() for r in results] == expected
        assert engine.stats["pool_rebuilds"] >= 1
        assert engine.stats["computed"] == len(configs)

    def test_task_exception_retries_chunk_and_finishes_identically(self, tmp_path):
        configs = _configs()
        expected = _baseline(configs)
        engine = SimEngine(workers=2, fast=True, store=tmp_path / "store")
        try:
            faults.install("seed=3;engine.chunk=raise:p=0.5,max=3")
            results = engine.run_many(configs)
        finally:
            faults.clear()
            engine.close()
        assert [r.to_dict() for r in results] == expected
        assert engine.stats["chunk_retries"] >= 1

    def test_certain_crash_falls_back_to_serial_execution(self, tmp_path):
        # With the failpoint firing on every worker-side chunk, the pool
        # can never make progress; the engine must exhaust its bounded
        # retries and still complete via the in-process serial fallback.
        configs = _configs(("gcc", "art"))
        expected = _baseline(configs)
        engine = SimEngine(
            workers=2, fast=True, store=tmp_path / "store", chunk_retries=1
        )
        try:
            faults.install("engine.chunk=crash")  # p=1, uncapped
            results = engine.run_many(configs)
        finally:
            faults.clear()
            engine.close()
        assert [r.to_dict() for r in results] == expected

    def test_chunk_retries_validation(self):
        with pytest.raises(ValueError):
            SimEngine(chunk_retries=-1)


class TestStoreFaultTolerance:
    def test_store_put_errors_do_not_fail_the_run(self, tmp_path):
        configs = _configs(("gcc", "art"))
        expected = _baseline(configs)
        engine = SimEngine(workers=1, fast=True, store=tmp_path / "store")
        try:
            faults.install("store.put=error")  # every write-back fails
            results = engine.run_many(configs)
        finally:
            faults.clear()
            engine.close()
        # Results still come back correct; only persistence was lost.
        assert [r.to_dict() for r in results] == expected
        assert engine.stats["store_put_errors"] >= 1
