"""Tests for SimEngine: caching, persistence and parallel fan-out."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core.registry import PolicySpec
from repro.sim import ResultStore, SimEngine, SimulationConfig


def _tiny(benchmark="gcc", n=1_000, **kwargs):
    return SimulationConfig(benchmark=benchmark, n_instructions=n, **kwargs)


class TestEngineCache:
    def test_run_memoises(self):
        engine = SimEngine()
        first = engine.run(_tiny())
        assert engine.run(_tiny()) is first
        assert engine.stats["computed"] == 1
        assert engine.stats["memory_hits"] == 1

    def test_cache_is_bounded(self):
        engine = SimEngine(max_cached_runs=3)
        benchmarks = ["gcc", "mesa", "art", "equake", "vpr"]
        for name in benchmarks:
            engine.run(_tiny(name, n=600))
        assert len(engine) == 3
        assert engine.stats["computed"] == 5
        # The most recent runs survived; the oldest were evicted.
        cached = {r.benchmark for r in engine.cached_results()}
        assert cached == {"art", "equake", "vpr"}

    def test_clear_empties_cache(self):
        engine = SimEngine()
        engine.run(_tiny(n=600))
        assert len(engine) == 1
        engine.clear()
        assert len(engine) == 0

    def test_alias_specs_share_cache_and_canonical_label(self):
        engine = SimEngine()
        via_alias = engine.run(_tiny(dcache=PolicySpec("ondemand"), n=700))
        via_name = engine.run(_tiny(dcache=PolicySpec("on-demand"), n=700))
        assert via_name is via_alias
        assert via_alias.dcache_policy == "on-demand"

    def test_use_cache_false_bypasses(self):
        engine = SimEngine()
        first = engine.run(_tiny(n=600))
        again = engine.run(_tiny(n=600), use_cache=False)
        assert again is not first
        assert again == first

    def test_engine_is_always_truthy(self):
        assert SimEngine()
        assert len(SimEngine()) == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SimEngine(max_cached_runs=0)
        with pytest.raises(ValueError):
            SimEngine(workers=0)


class TestParallelExecution:
    def test_parallel_sweep_matches_serial(self):
        """>= 8 configurations, workers > 1, bit-identical results."""
        base = _tiny(n=1_200, dcache=PolicySpec("gated", {"threshold": 50}))
        names = [
            "gcc", "mesa", "art", "equake", "mcf", "vpr", "treeadd", "health",
        ]
        serial = SimEngine().sweep(base, benchmarks=names, workers=1)
        parallel = SimEngine().sweep(base, benchmarks=names, workers=4)
        assert list(serial) == names == list(parallel)
        assert serial == parallel

    def test_run_many_preserves_order_and_dedupes(self):
        engine = SimEngine()
        configs = [_tiny("gcc", n=700), _tiny("mesa", n=700), _tiny("gcc", n=700)]
        results = engine.run_many(configs, workers=2)
        assert [r.benchmark for r in results] == ["gcc", "mesa", "gcc"]
        assert results[0] is results[2]
        assert engine.stats["computed"] == 2

    def test_run_many_uses_cache(self):
        engine = SimEngine()
        warm = engine.run(_tiny("gcc", n=700))
        results = engine.run_many([_tiny("gcc", n=700), _tiny("mesa", n=700)])
        assert results[0] is warm
        assert engine.stats["computed"] == 2

    def test_runs_are_deterministic_across_processes(self):
        """A fresh interpreter reproduces a run bit-for-bit.

        This is the property the on-disk store and parallel fan-out rely
        on; it once broke because workload seeding used the per-process
        randomised ``hash(str)``.
        """
        config = _tiny(n=800)
        local = SimEngine().run(config)
        script = (
            "import json;"
            "from repro.sim import SimEngine, SimulationConfig;"
            "cfg = SimulationConfig.from_dict(json.loads(%r));"
            "print(SimEngine().run(cfg).to_json())"
        ) % json.dumps(config.to_dict())
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=dict(os.environ),
        ).stdout
        from repro.sim import RunResult

        assert RunResult.from_json(output) == local

    def test_sweep_carries_every_config_field(self):
        """sweep substitutes only the benchmark (dataclasses.replace)."""
        base = SimulationConfig(
            benchmark="gcc",
            dcache=PolicySpec("gated-predecode", {"threshold": 40}),
            icache=PolicySpec("gated", {"threshold": 60}),
            feature_size_nm=100,
            subarray_bytes=2048,
            n_instructions=900,
            seed=3,
        )
        results = SimEngine().sweep(base, benchmarks=["mesa", "art"])
        for name, run in results.items():
            assert run.benchmark == name
            assert run.dcache_policy == "gated-predecode"
            assert run.icache_policy == "gated"
            assert run.feature_size_nm == 100
            assert run.subarray_bytes == 2048


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        config = _tiny(n=800)
        assert store.get(config) is None
        engine = SimEngine(store=store)
        result = engine.run(config)
        assert store.get(config) == result
        assert len(store) == 1
        assert config in store

    def test_sweeps_resume_across_engines(self, tmp_path):
        store_dir = tmp_path / "results"
        first = SimEngine(store=ResultStore(store_dir))
        config = _tiny(n=800)
        result = first.run(config)

        # A fresh engine (fresh process in real use) resumes from disk.
        second = SimEngine(store=str(store_dir))
        resumed = second.run(config)
        assert resumed == result
        assert second.stats["memory_hits"] == 0
        assert second.stats["store_hits"] == 1
        assert second.stats["computed"] == 0

    def test_different_configs_have_different_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        a = _tiny(n=800)
        b = dataclasses.replace(a, seed=2)
        assert ResultStore.key_for(a) != ResultStore.key_for(b)

    def test_equivalent_specs_share_a_key(self, tmp_path):
        explicit = _tiny(dcache=PolicySpec("gated", {"threshold": 100}))
        implicit = _tiny(dcache=PolicySpec("gated"))
        assert ResultStore.key_for(explicit) == ResultStore.key_for(implicit)

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        config = _tiny(n=800)
        engine = SimEngine(store=store)
        engine.run(config)
        for path in store.directory.glob("*.json"):
            path.write_text("{truncated")
        fresh = SimEngine(store=store)
        assert fresh.run(config).cycles > 0
        assert fresh.stats["computed"] == 1

    def test_clear_and_iter(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = SimEngine(store=store)
        engine.run(_tiny("gcc", n=700))
        engine.run(_tiny("mesa", n=700))
        assert {r.benchmark for r in store.iter_results()} == {"gcc", "mesa"}
        store.clear()
        assert len(store) == 0


class TestL2AxisThroughEngine:
    """The L2 policy is a first-class sweep axis for the engine."""

    def test_l2_policies_memoise_separately(self):
        engine = SimEngine()
        static = engine.run(_tiny())
        gated = engine.run(_tiny(l2=PolicySpec("gated", {"threshold": 500})))
        assert engine.stats["computed"] == 2
        assert gated.l2_policy == "gated"
        assert static.l2_policy == "static"
        # An equivalent spec spelling reuses the gated entry.
        again = engine.run(_tiny(l2=PolicySpec("gated", (("threshold", 500),))))
        assert engine.stats["computed"] == 2
        assert again is gated

    def test_sweep_carries_the_l2_spec(self):
        engine = SimEngine(fast=True)
        base = _tiny(l2=PolicySpec("gated", {"threshold": 500}))
        results = engine.sweep(base, benchmarks=["gcc", "treeadd"])
        assert all(run.l2_policy == "gated" for run in results.values())
        assert all(run.energy.l2 is not None for run in results.values())

    def test_store_resumes_l2_runs(self, tmp_path):
        config = _tiny(l2=PolicySpec("gated", {"threshold": 500}))
        first = SimEngine(store=str(tmp_path)).run(config)
        resumed_engine = SimEngine(store=str(tmp_path))
        resumed = resumed_engine.run(config)
        assert resumed_engine.stats["computed"] == 0
        assert resumed.to_dict() == first.to_dict()
