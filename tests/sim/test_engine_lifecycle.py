"""SimEngine lifecycle edges the service leans on.

* ``close()`` / ``terminate()`` are idempotent and safe under
  concurrent callers;
* ``run_many(cancel=...)`` stops at the next boundary and keeps
  completed work in the cache/store;
* SIGINT / SIGTERM during a pooled sweep cancel the outstanding futures
  and leave **no orphaned fork workers** (exercised via a real
  subprocess, the only honest way to test signal delivery).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import RunCancelled, SimEngine

SRC = Path(__file__).resolve().parents[2] / "src"


class TestCloseIdempotence:
    def test_close_without_pool_is_a_no_op(self):
        engine = SimEngine()
        engine.close()
        engine.close()

    def test_close_concurrent_callers(self):
        engine = SimEngine(fast=True)
        engine.run_many(
            [
                SimulationConfig(benchmark=name, n_instructions=300)
                for name in ("gcc", "art")
            ],
            workers=2,
        )
        errors = []

        def closer():
            try:
                for _ in range(5):
                    engine.close()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert engine._pool is None

    def test_terminate_idempotent_and_engine_reusable(self):
        engine = SimEngine(fast=True)
        configs = [
            SimulationConfig(benchmark=name, n_instructions=300)
            for name in ("gcc", "art")
        ]
        engine.run_many(configs, workers=2)
        engine.terminate()
        engine.terminate()
        # The engine forks a fresh pool on the next parallel call.
        results = engine.run_many(configs, workers=2, use_cache=False)
        assert len(results) == 2


class TestCancellation:
    def test_cancel_before_start_raises_without_computing(self):
        engine = SimEngine(fast=True)
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(RunCancelled):
            engine.run_many(
                [SimulationConfig(benchmark="gcc", n_instructions=400)],
                cancel=cancel,
            )
        assert engine.stats["computed"] == 0

    def test_serial_cancellation_keeps_completed_work(self, tmp_path):
        engine = SimEngine(fast=True, store=tmp_path / "store")
        cancel = threading.Event()
        configs = [
            SimulationConfig(benchmark=name, n_instructions=400)
            for name in ("gcc", "art", "mcf")
        ]
        calls = []
        original = engine._cache_put

        def tracking_put(key, result):
            calls.append(key)
            original(key, result)
            if len(calls) == 2:
                cancel.set()

        engine._cache_put = tracking_put
        with pytest.raises(RunCancelled):
            engine.run_many(configs, cancel=cancel)
        # Two results were computed and written back before the cancel.
        assert engine.stats["computed"] == 2
        assert engine.store.get(configs[0]) is not None
        assert engine.store.get(configs[1]) is not None
        assert engine.store.get(configs[2]) is None

    def test_parallel_cancellation_salvages_finished_chunks(self, tmp_path):
        # Chunks are consumed in submission (longest-first) order, so a
        # short chunk finishing on another worker while the long one is
        # still running must be written back when the batch cancels.
        engine = SimEngine(fast=True, store=tmp_path / "store")
        cancel = threading.Event()
        long_config = SimulationConfig(
            benchmark="mcf", n_instructions=600_000, seed=7
        )
        short_config = SimulationConfig(benchmark="gcc", n_instructions=300, seed=7)
        try:
            timer = threading.Timer(1.5, cancel.set)
            timer.start()
            try:
                with pytest.raises(RunCancelled):
                    engine.run_many(
                        [long_config, short_config], workers=2, cancel=cancel
                    )
            finally:
                timer.cancel()
            assert engine.store.get(short_config) is not None
        finally:
            engine.terminate()

    def test_parallel_cancellation_raises(self):
        engine = SimEngine(fast=True)
        cancel = threading.Event()
        configs = [
            SimulationConfig(benchmark=name, n_instructions=150_000, seed=3)
            for name in ("gcc", "art", "mcf", "equake")
        ]
        timer = threading.Timer(0.3, cancel.set)
        timer.start()
        try:
            with pytest.raises(RunCancelled):
                engine.run_many(configs, workers=2, cancel=cancel)
        finally:
            timer.cancel()
            engine.terminate()


def _interrupt_script(tmp_path: Path, handler: str) -> Path:
    script = tmp_path / "sweep_victim.py"
    script.write_text(
        f"""
import signal, sys
sys.path.insert(0, {str(SRC)!r})
{handler}
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine

engine = SimEngine(fast=True)
# Pool workers spawn lazily; a small parallel call forces them up so
# their pids are known before the long sweep starts.
engine.run_many(
    [SimulationConfig(benchmark=b, n_instructions=200) for b in ("gcc", "art")],
    workers=2,
)
pids = [p.pid for p in engine._pool._processes.values()]
print("PIDS " + ",".join(str(p) for p in pids), flush=True)
configs = [
    SimulationConfig(benchmark=b, n_instructions=2_000_000)
    for b in ("gcc", "mcf", "art", "equake", "mesa", "vpr")
]
try:
    engine.run_many(configs, workers=2)
except KeyboardInterrupt:
    sys.exit(130)
print("FINISHED", flush=True)
"""
    )
    return script


def _assert_no_orphans(pids, deadline_s=10.0):
    deadline = time.time() + deadline_s
    remaining = list(pids)
    while remaining and time.time() < deadline:
        remaining = [pid for pid in remaining if _alive(pid)]
        if remaining:
            time.sleep(0.1)
    assert not remaining, f"orphaned fork workers survived: {remaining}"


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.mark.parametrize(
    "signum,handler",
    [
        (signal.SIGINT, ""),  # default: KeyboardInterrupt
        (
            signal.SIGTERM,
            "signal.signal(signal.SIGTERM, lambda *a: sys.exit(143))",
        ),
    ],
    ids=["sigint", "sigterm"],
)
def test_interrupt_mid_sweep_leaves_no_orphan_workers(tmp_path, signum, handler):
    script = _interrupt_script(tmp_path, handler)
    process = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stdout.readline().strip()
        assert line.startswith("PIDS "), line
        worker_pids = [int(p) for p in line.split(" ", 1)[1].split(",")]
        time.sleep(0.8)  # let the sweep get onto the workers
        process.send_signal(signum)
        process.wait(timeout=20)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    assert process.returncode != 0  # interrupted, not finished
    _assert_no_orphans(worker_pids)
