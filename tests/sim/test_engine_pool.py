"""The PR-4 sweep runtime: persistent pool, chunking, work stealing."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, _estimated_cost, _execute_chunk
from repro.sim.fastpath import _trace_cache_key


def _tiny(benchmark="gcc", n=700, **kwargs):
    return SimulationConfig(
        benchmark=benchmark, dcache="gated", icache="static",
        n_instructions=n, **kwargs
    )


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        with SimEngine(workers=2) as engine:
            engine.run_many([_tiny("gcc"), _tiny("mesa")], workers=2)
            first_pool = engine._pool
            assert first_pool is not None
            engine.clear()
            engine.run_many([_tiny("art"), _tiny("vpr")], workers=2)
            assert engine._pool is first_pool
        assert engine._pool is None

    def test_worker_count_change_recycles_pool(self):
        with SimEngine(workers=2) as engine:
            engine.run_many([_tiny("gcc"), _tiny("mesa")], workers=2)
            first_pool = engine._pool
            engine.clear()
            engine.run_many([_tiny("gcc"), _tiny("mesa")], workers=3)
            assert engine._pool is not first_pool
            assert engine._pool_workers == 3

    def test_close_is_idempotent_and_reopens(self):
        engine = SimEngine(workers=2)
        engine.run_many([_tiny("gcc"), _tiny("mesa")], workers=2)
        engine.close()
        engine.close()
        assert engine._pool is None
        engine.clear()
        results = engine.run_many([_tiny("gcc"), _tiny("mesa")], workers=2)
        assert len(results) == 2
        engine.close()

    def test_serial_calls_never_spawn_a_pool(self):
        engine = SimEngine(workers=1)
        engine.run(_tiny("gcc"))
        assert engine._pool is None

    def test_parallel_results_match_serial(self):
        grid = [
            replace(_tiny(benchmark), l2=PolicySpec("gated", {"threshold": t}))
            for benchmark in ("gcc", "mesa", "art")
            for t in (100, 500)
        ]
        serial = SimEngine().run_many(grid, workers=1)
        with SimEngine() as engine:
            parallel = engine.run_many(grid, workers=3)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_parallel_interleaved_input_keeps_result_order(self):
        """Policy-major grids interleave benchmarks across trace groups.

        Chunking groups configs by compiled trace; the reassembly must
        write each result back to its *input* position, not the group
        position (this once returned mcf's results under gcc's configs).
        """
        grid = [
            replace(_tiny(benchmark), l2=PolicySpec("gated", {"threshold": t}))
            for t in (100, 500, 2000)
            for benchmark in ("gcc", "mesa", "art")
        ]
        with SimEngine() as engine:
            parallel = engine.run_many(grid, workers=3)
        serial = SimEngine().run_many(grid, workers=1)
        assert [r.benchmark for r in parallel] == [c.benchmark for c in grid]
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]


class TestChunking:
    def test_chunks_are_trace_affine(self):
        configs = [
            _tiny(benchmark, n=n)
            for benchmark in ("gcc", "mcf", "art")
            for n in (500, 600, 700)
        ]
        chunks = SimEngine._make_chunks(configs, workers=2)
        for _, chunk in chunks:
            keys = {_trace_cache_key(c.benchmark, c.seed) for c in chunk}
            assert len(keys) == 1, "a chunk must share one compiled trace"
        flattened = sorted(
            (position, offset, config)
            for position, chunk in chunks
            for offset, config in enumerate(chunk)
        )
        assert [c for _, _, c in flattened] == configs, "positions reassemble input order"

    def test_chunks_are_sorted_longest_first(self):
        configs = [_tiny("gcc", n=200), _tiny("mcf", n=9_000), _tiny("mesa", n=400)]
        chunks = SimEngine._make_chunks(configs, workers=2)
        estimates = [sum(_estimated_cost(c) for c in chunk) for _, chunk in chunks]
        assert estimates == sorted(estimates, reverse=True)
        assert chunks[0][1][0].benchmark == "mcf"

    def test_estimated_cost_scales_with_instructions(self):
        assert _estimated_cost(_tiny(n=2_000)) > _estimated_cost(_tiny(n=1_000))

    def test_estimated_cost_handles_scenarios(self):
        # Scenario names are not in the characteristics table; the
        # estimator must fall back instead of raising.
        assert _estimated_cost(_tiny(benchmark="mix:gcc+mcf@500")) > 0

    def test_execute_chunk_runs_in_order(self):
        chunk = [_tiny("gcc"), _tiny("mesa")]
        results, meta = _execute_chunk((False, chunk))
        assert [r.benchmark for r in results] == ["gcc", "mesa"]
        assert meta["configs"] == 2
        assert meta["dur_s"] >= 0.0
        assert meta["profile"] is None, "profiler is disarmed by default"
