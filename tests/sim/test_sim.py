"""Tests for the simulation configuration, runner, metrics and sweeps."""

import pytest

from repro.core import (
    GatedPrechargePolicy,
    OnDemandPrechargePolicy,
    OraclePrechargePolicy,
    ResizableCachePolicy,
    StaticPullUpPolicy,
)
from repro.sim import (
    POLICY_NAMES,
    SimulationConfig,
    arithmetic_mean,
    geometric_mean,
    make_policy,
    run_simulation,
    select_benchmark_thresholds,
    slowdown,
    sweep_benchmarks,
)


class TestPolicyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("static", StaticPullUpPolicy),
            ("oracle", OraclePrechargePolicy),
            ("on-demand", OnDemandPrechargePolicy),
            ("gated", GatedPrechargePolicy),
            ("gated-predecode", GatedPrechargePolicy),
            ("resizable", ResizableCachePolicy),
        ],
    )
    def test_every_published_policy_is_constructible(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_gated_predecode_enables_predecoding(self):
        assert make_policy("gated-predecode").use_predecode
        assert not make_policy("gated").use_predecode

    def test_threshold_passed_through(self):
        assert make_policy("gated", threshold=250).threshold == 250

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("drowsy")

    def test_all_policy_names_listed(self):
        for name in POLICY_NAMES:
            make_policy(name)


class TestSimulationConfig:
    def test_defaults_follow_the_paper(self):
        config = SimulationConfig()
        assert config.feature_size_nm == 70
        assert config.subarray_bytes == 1024
        hierarchy = config.hierarchy_config()
        assert hierarchy.l1d_bytes == 32 * 1024
        assert hierarchy.l1i_latency == 2 and hierarchy.l1d_latency == 3

    def test_on_demand_folds_known_latency_into_speculation(self):
        ondemand = SimulationConfig(dcache_policy="on-demand")
        static = SimulationConfig(dcache_policy="static")
        assert ondemand.pipeline_config().speculative_extra_latency == 1
        assert static.pipeline_config().speculative_extra_latency == 0

    def test_with_policies_returns_modified_copy(self):
        base = SimulationConfig(benchmark="gcc")
        other = base.with_policies("oracle", "oracle")
        assert other.dcache_policy == "oracle"
        assert base.dcache_policy == "static"
        assert other.benchmark == "gcc"


class TestRunner:
    def test_run_produces_consistent_result(self, small_baseline_run):
        result = small_baseline_run
        assert result.cycles > 0
        assert result.pipeline.committed_instructions >= 6_000
        assert 0 < result.ipc < 8
        assert result.dcache_accesses > 0
        assert result.icache_accesses > 0
        assert result.energy.dcache_relative_discharge == pytest.approx(1.0)

    def test_run_cache_returns_same_object(self, small_baseline_run):
        config = SimulationConfig(
            benchmark="gcc", dcache_policy="static", icache_policy="static",
            feature_size_nm=70, n_instructions=6_000,
        )
        assert run_simulation(config) is small_baseline_run

    def test_gated_run_saves_discharge_with_small_slowdown(
        self, small_baseline_run, small_gated_run
    ):
        assert small_gated_run.energy.dcache_relative_discharge < 0.6
        assert small_gated_run.energy.icache_relative_discharge < 0.3
        assert abs(slowdown(small_gated_run, small_baseline_run)) < 0.05

    def test_gaps_are_collected_for_locality_analysis(self, small_baseline_run):
        assert len(small_baseline_run.dcache_gaps) > 100
        assert all(gap >= 0 for gap in small_baseline_run.dcache_gaps[:100])


class TestMetrics:
    def test_slowdown_requires_same_benchmark(self, small_baseline_run):
        other = run_simulation(
            SimulationConfig(benchmark="mesa", n_instructions=3_000)
        )
        with pytest.raises(ValueError):
            slowdown(other, small_baseline_run)

    def test_means(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_summary_mentions_benchmark_and_policy(self, small_gated_run):
        text = small_gated_run.summary()
        assert "gcc" in text and "gated" in text


class TestSweeps:
    def test_sweep_runs_requested_benchmarks(self):
        base = SimulationConfig(n_instructions=3_000)
        results = sweep_benchmarks(base, benchmarks=["gcc", "treeadd"])
        assert set(results) == {"gcc", "treeadd"}
        assert all(r.cycles > 0 for r in results.values())

    def test_threshold_selection_returns_candidate_values(self):
        base = SimulationConfig(n_instructions=6_000)
        thresholds = select_benchmark_thresholds("gcc", base)
        from repro.core.threshold import CANDIDATE_THRESHOLDS

        assert thresholds.dcache_threshold in CANDIDATE_THRESHOLDS
        assert thresholds.icache_threshold in CANDIDATE_THRESHOLDS
        assert thresholds.benchmark == "gcc"
