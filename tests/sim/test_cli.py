"""Tests for the ``python -m repro`` command line interface."""

import json

import pytest

from repro.cli import main
from repro.sim import RunResult


def run_cli(capsys, *argv):
    status = main(list(argv))
    out = capsys.readouterr().out
    return status, out


class TestExperimentCommand:
    def test_list(self, capsys):
        status, out = run_cli(capsys, "experiment", "--list")
        assert status == 0
        for name in ("table1", "figure8", "ondemand", "l2sweep", "frontier"):
            assert name in out

    def test_list_surfaces_descriptions(self, capsys):
        status, out = run_cli(capsys, "experiment", "--list")
        assert status == 0
        # Titles alone are not enough: the registry docstrings show too.
        assert "Gated precharging: precharged subarrays" in out
        assert "Pareto frontier" in out

    def test_list_json_carries_descriptions(self, capsys):
        status, out = run_cli(capsys, "experiment", "--list", "--json")
        assert status == 0
        payload = json.loads(out)
        assert payload["figure8"]["title"].startswith("Figure 8")
        assert payload["figure8"]["description"]
        assert payload["table1"]["uses_engine"] is False
        assert "l2_policy" in payload["l2sweep"]["consumes"]

    def test_table1_smoke(self, capsys):
        status, out = run_cli(capsys, "experiment", "table1")
        assert status == 0
        assert "Table 1" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "figure99"]) == 2

    def test_non_engine_experiment_declares_itself(self, capsys):
        status = main(["experiment", "table1", "--json", "--workers", "4"])
        captured = capsys.readouterr()
        assert status == 0
        payload = json.loads(captured.out)
        assert payload["uses_engine"] is False
        assert payload["runs"] == []
        assert "no effect" in captured.err

    def test_ignored_option_flags_are_noted(self, capsys):
        status = main(["experiment", "table1", "--benchmarks", "gcc"])
        captured = capsys.readouterr()
        assert status == 0
        assert "ignores --benchmarks" in captured.err

    def test_figure8_json_round_trips_through_runresult(self, capsys):
        status, out = run_cli(
            capsys,
            "experiment", "figure8", "--json",
            "--benchmarks", "gcc", "--instructions", "3000",
        )
        assert status == 0
        payload = json.loads(out)
        assert payload["experiment"] == "figure8"
        assert payload["options"]["benchmarks"] == ["gcc"]
        assert "gcc" in payload["result"]["optimum"]
        assert payload["runs"], "engine runs must be included in JSON output"
        for entry in payload["runs"]:
            rebuilt = RunResult.from_dict(entry)
            assert rebuilt.to_dict() == entry
            assert rebuilt.benchmark == "gcc"


class TestRunCommand:
    def test_human_readable(self, capsys):
        status, out = run_cli(
            capsys,
            "run", "--benchmark", "gcc", "--dcache", "gated:threshold=50",
            "--instructions", "2000",
        )
        assert status == 0
        assert "gcc" in out and "gated" in out

    def test_json_round_trip(self, capsys):
        status, out = run_cli(
            capsys,
            "run", "--benchmark", "mesa", "--instructions", "2000", "--json",
        )
        assert status == 0
        result = RunResult.from_dict(json.loads(out))
        assert result.benchmark == "mesa"
        assert result.cycles > 0

    def test_bad_policy_spec_fails_cleanly(self, capsys):
        assert main(["run", "--dcache", "not-a-policy", "--instructions", "500"]) == 2

    def test_unknown_benchmark_and_node_fail_cleanly(self, capsys):
        assert main(["run", "--benchmark", "bogus", "--instructions", "500"]) == 2
        assert main(["run", "--feature-size", "80", "--instructions", "500"]) == 2
        assert main(["sweep", "--benchmarks", "gcc,typo", "--instructions", "500"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark" in err and "unknown technology node" in err

    def test_zero_workers_rejected_on_every_subcommand(self, capsys):
        assert main(["run", "--workers", "0", "--instructions", "500"]) == 2
        assert main(["experiment", "table1", "--workers", "0"]) == 2
        assert main(["sweep", "--workers", "0", "--instructions", "500"]) == 2

    def test_trace_io_errors_fail_cleanly(self, capsys, tmp_path):
        missing = str(tmp_path / "missing.trace.gz")
        assert main(["trace", "info", missing]) == 2
        assert main(["run", "--benchmark", f"trace:{missing}"]) == 2
        not_gzip = tmp_path / "plain.trace.gz"
        not_gzip.write_text("not a gzip stream")
        assert main(["trace", "info", str(not_gzip)]) == 2
        assert main(["run", "--benchmark", f"trace:{tmp_path}"]) == 2
        unwritable = str(tmp_path / "no" / "such" / "dir" / "x.trace.gz")
        assert main([
            "trace", "record", "--benchmark", "gcc",
            "--out", unwritable, "--instructions", "100",
        ]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "Traceback" not in err

    def test_bad_scenario_specs_fail_cleanly(self, capsys):
        assert main(["run", "--benchmark", "mix:gcc", "--instructions", "500"]) == 2
        assert main(["run", "--benchmark", "mix:gcc+nope", "--instructions", "500"]) == 2
        err = capsys.readouterr().err
        assert "at least two" in err and "unknown benchmark" in err

    def test_malformed_nested_scenarios_exit_2_with_position(self, capsys):
        # The satellite contract: nested scenario syntax errors surface
        # as position-annotated exit-2 messages on run, sweep and
        # experiment alike — never as a traceback.
        bad = "mix:(phases:gcc+mcf@soon)+vortex"
        assert main(["run", "--benchmark", bad, "--instructions", "500"]) == 2
        assert main(["sweep", "--benchmarks", f"gcc,{bad}",
                     "--instructions", "500"]) == 2
        assert main(["experiment", "figure8", "--benchmarks", bad,
                     "--instructions", "500"]) == 2
        err = capsys.readouterr().err
        assert err.count("at position 20") == 3
        assert "Traceback" not in err

    def test_bad_fuzz_names_exit_2(self, capsys):
        assert main(["run", "--benchmark", "fuzz:zzz",
                     "--instructions", "500"]) == 2
        assert main(["run", "--benchmark", "fuzz:1/99",
                     "--instructions", "500"]) == 2
        err = capsys.readouterr().err
        assert "fuzz seed must be an integer" in err
        assert "fuzz depth must be between" in err

    def test_nested_scenario_and_fuzz_names_run(self, capsys):
        status, out = run_cli(
            capsys,
            "run", "--benchmark", "mix:(phases:gcc+mcf@300)*2+vortex@250",
            "--instructions", "1200", "--json",
        )
        assert status == 0
        result = RunResult.from_dict(json.loads(out))
        assert result.benchmark.startswith("mix:(")
        status, out = run_cli(
            capsys,
            "run", "--benchmark", "fuzz:4", "--instructions", "1200",
            "--json", "--fast",
        )
        assert status == 0
        assert RunResult.from_dict(json.loads(out)).benchmark == "fuzz:4"

    def test_l2_policy_flag_reaches_the_simulation(self, capsys):
        status, out = run_cli(
            capsys,
            "run", "--benchmark", "gcc", "--l2-policy", "gated:threshold=500",
            "--instructions", "1500", "--json",
        )
        assert status == 0
        result = RunResult.from_dict(json.loads(out))
        assert result.l2_policy == "gated"
        assert result.energy.l2 is not None
        assert result.energy.l2_relative_discharge < 1.0

    def test_bad_l2_policy_fails_cleanly(self, capsys):
        assert main(["run", "--l2-policy", "bogus", "--instructions", "500"]) == 2
        assert main([
            "experiment", "figure3", "--l2-policy", "bogus",
            "--benchmarks", "gcc", "--instructions", "500",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown policy" in err and "Traceback" not in err

    def test_l2_policy_ignored_note_for_non_l2_experiments(self, capsys):
        status = main([
            "experiment", "figure5", "--l2-policy", "gated",
            "--benchmarks", "gcc", "--instructions", "1000",
        ])
        captured = capsys.readouterr()
        assert status == 0
        assert "ignores --l2-policy" in captured.err

    def test_fast_and_reference_cli_json_are_identical(self, capsys):
        status, reference = run_cli(
            capsys, "run", "--benchmark", "gcc", "--dcache", "gated",
            "--instructions", "1500", "--json",
        )
        assert status == 0
        status, fast = run_cli(
            capsys, "run", "--benchmark", "gcc", "--dcache", "gated",
            "--instructions", "1500", "--json", "--fast",
        )
        assert status == 0
        assert fast == reference


class TestSweepCommand:
    def test_json_sweep(self, capsys):
        status, out = run_cli(
            capsys,
            "sweep", "--benchmarks", "gcc,mesa", "--instructions", "1500", "--json",
        )
        assert status == 0
        payload = json.loads(out)
        assert set(payload) == {"gcc", "mesa"}
        for name, entry in payload.items():
            assert RunResult.from_dict(entry).benchmark == name

    def test_store_resumes_across_invocations(self, capsys, tmp_path):
        argv = [
            "sweep", "--benchmarks", "gcc,mesa", "--instructions", "1500",
            "--store", str(tmp_path / "results"), "--json",
        ]
        status, first = run_cli(capsys, *argv)
        assert status == 0
        status, second = run_cli(capsys, *argv)
        assert status == 0
        assert json.loads(first) == json.loads(second)
        assert len(list((tmp_path / "results").glob("*.json"))) == 2


class TestPoliciesCommand:
    def test_lists_registered_policies(self, capsys):
        status, out = run_cli(capsys, "policies")
        assert status == 0
        assert "gated-predecode" in out and "threshold" in out

    def test_json(self, capsys):
        status, out = run_cli(capsys, "policies", "--json")
        assert status == 0
        payload = json.loads(out)
        assert payload["gated"]["defaults"]["threshold"] == 100
        assert payload["on-demand"]["scheduler_extra_latency"] == 1


class TestBenchCommand:
    def test_smoke_bench_writes_artifact(self, capsys, tmp_path):
        output = tmp_path / "BENCH_test.json"
        status, out = run_cli(
            capsys, "bench", "--smoke", "--instructions", "400",
            "--grid-benchmarks", "gcc", "--output", str(output),
            "--compare", str(tmp_path / "missing.json"),
        )
        assert status == 0
        payload = json.loads(output.read_text())
        assert payload["schema"] == "repro-bench/pr6"
        assert payload["summary"]["all_identical"] is True
        assert payload["sweep_benchmarks"]["speedup"] > 0
        assert len(payload["l2_grid"]) == 5  # one benchmark x five L2 policies
        assert "wrote" in out

    def test_baseline_regression_trips_exit_3(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "summary": {"grid_geomean_speedup": 10_000.0, "sweep_speedup": 10_000.0}
        }))
        output = tmp_path / "BENCH_test.json"
        status, out = run_cli(
            capsys, "bench", "--smoke", "--instructions", "400",
            "--grid-benchmarks", "gcc", "--output", str(output),
            "--compare", str(tmp_path / "missing.json"),
            "--baseline", str(baseline), "--tolerance", "0.5",
        )
        assert status == 3
        assert "REGRESSION" in out

    def test_service_clients_must_be_positive(self, capsys, tmp_path):
        status, _ = run_cli(
            capsys, "bench", "--service", "--clients", "0",
            "--output", str(tmp_path / "b.json"),
        )
        assert status == 2

    def test_vs_compare_requires_matching_instruction_counts(self, capsys, tmp_path):
        compare = tmp_path / "BENCH_prev.json"
        compare.write_text(json.dumps({
            "instructions": 999_999,
            "l2_grid": [{"benchmark": "gcc", "l2_policy": "static", "fast_s": 1.0}],
        }))
        output = tmp_path / "BENCH_test.json"
        status, _ = run_cli(
            capsys, "bench", "--smoke", "--instructions", "400",
            "--grid-benchmarks", "gcc", "--output", str(output),
            "--compare", str(compare),
        )
        assert status == 0
        payload = json.loads(output.read_text())
        assert all("vs_compare" not in row for row in payload["l2_grid"])
        assert "vs_compare_grid_geomean" not in payload["summary"]


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys, tmp_path):
        report_path = tmp_path / "fuzz.json"
        status, out = run_cli(
            capsys,
            "fuzz", "--budget", "2", "--seed-base", "0",
            "--instructions", "600", "--report", str(report_path),
        )
        assert status == 0
        assert "0 mismatch(es)" in out
        report = json.loads(report_path.read_text())
        assert report["budget"] == 2
        assert report["mismatches"] == 0
        assert [r["status"] for r in report["results"]] == ["match", "match"]
        for entry in report["results"]:
            assert entry["name"].startswith("fuzz:")
            assert entry["canonical"]

    def test_json_report_on_stdout(self, capsys):
        status, out = run_cli(
            capsys,
            "fuzz", "--budget", "1", "--instructions", "600", "--json",
        )
        assert status == 0
        report = json.loads(out)
        assert report["seed_base"] == 0 and report["depth"] == 3

    def test_bad_arguments_exit_2(self, capsys):
        assert main(["fuzz", "--budget", "0"]) == 2
        assert main(["fuzz", "--seed-base", "-1"]) == 2
        assert main(["fuzz", "--budget", "1", "--depth", "99"]) == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
