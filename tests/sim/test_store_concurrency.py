"""ResultStore under concurrent writers (two processes, one directory).

The store's contract is per-key atomic publication: a reader may see a
missing entry but never partial JSON, even while several processes
write overlapping keys as fast as they can.
"""

from __future__ import annotations

import json
import multiprocessing
import sys

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import execute_run_fast
from repro.sim.store import ResultStore

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)


def _configs():
    return [
        SimulationConfig(benchmark=name, n_instructions=250, seed=seed)
        for name in ("gcc", "art")
        for seed in (1, 2)
    ]


def _hammer(directory, rounds, barrier, failures):
    """Worker: interleave puts and gets of the same keys as fast as possible."""
    store = ResultStore(directory)
    configs = _configs()
    results = [execute_run_fast(config) for config in configs]
    barrier.wait()
    for round_number in range(rounds):
        for config, result in zip(configs, results):
            store.put(config, result)
            read = store.get(config)
            # None (not yet published) is legal; a *different* payload —
            # which would mean interleaved/partial JSON parsed "fine" —
            # is not: both processes write identical deterministic results.
            if read is not None and read.to_dict() != result.to_dict():
                failures.put(
                    f"round {round_number}: corrupt read for {config.benchmark}"
                )
                return
    failures.put(None)


class TestConcurrentWriters:
    def test_two_processes_hammering_one_store(self, tmp_path):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        failures = context.Queue()
        workers = [
            context.Process(
                target=_hammer, args=(tmp_path / "store", 60, barrier, failures)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [failures.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
        assert outcomes == [None, None]

        # Every surviving file parses as complete payload JSON.
        store = ResultStore(tmp_path / "store")
        keys = store.keys()
        assert len(keys) == len(_configs())
        for key in keys:
            payload = store.get_payload(key)
            assert payload is not None
            assert set(payload) == {"config", "result", "sha256"}
            assert store.get_by_key(key) is not None

    def test_no_leftover_temp_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=250)
        result = execute_run_fast(config)
        for _ in range(5):
            store.put(config, result)
        leftovers = list((tmp_path / "store").glob("*.tmp"))
        assert leftovers == []


class TestKeyAddressedAccess:
    def test_get_by_key_and_payload(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=250)
        result = execute_run_fast(config)
        store.put(config, result)
        key = ResultStore.key_for(config)
        assert store.keys() == [key]
        assert store.get_by_key(key).to_dict() == result.to_dict()
        payload = store.get_payload(key)
        assert payload["result"] == result.to_dict()
        assert SimulationConfig.from_dict(payload["config"]).cache_key() == (
            config.cache_key()
        )

    def test_malformed_key_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.get_payload("../../etc/passwd")
        with pytest.raises(ValueError):
            store.get_payload("")

    def test_truncated_entry_reads_as_missing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = SimulationConfig(benchmark="gcc", n_instructions=250)
        store.put(config, execute_run_fast(config))
        key = ResultStore.key_for(config)
        path = tmp_path / "store" / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get_by_key(key) is None
        assert store.get(config) is None
