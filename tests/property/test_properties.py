"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.cache.energy_accounting import EnergyLedger
from repro.cache.subarray import SubarrayTracker
from repro.circuits.bitline import Bitline
from repro.circuits.cacti import cache_organization
from repro.circuits.technology import get_technology
from repro.core import DecayCounter, GatedPrechargePolicy, OraclePrechargePolicy
from repro.core.threshold import ThresholdProfile, select_threshold
from repro.cpu.branch_predictor import CombinationPredictor
from repro.experiments.report import format_table

from tests.conftest import make_attached

NODES = st.sampled_from([180, 130, 100, 70])


class TestCircuitProperties:
    @given(nm=NODES, rows=st.integers(min_value=1, max_value=512),
           idle_ns=st.floats(min_value=0.0, max_value=10_000.0))
    @settings(max_examples=60, deadline=None)
    def test_isolated_discharge_never_exceeds_static(self, nm, rows, idle_ns):
        bitline = Bitline(tech=get_technology(nm), rows=rows)
        idle_s = idle_ns * 1e-9
        assert (
            bitline.isolated_discharge_energy_j(idle_s)
            <= bitline.static_discharge_energy_j(idle_s) * (1 + 1e-9)
        )

    @given(nm=NODES, rows=st.integers(min_value=1, max_value=512))
    @settings(max_examples=40, deadline=None)
    def test_isolated_discharge_bounded_by_stored_energy(self, nm, rows):
        bitline = Bitline(tech=get_technology(nm), rows=rows)
        long_idle = 50 * bitline.decay_time_constant_s
        assert bitline.isolated_discharge_energy_j(long_idle) <= (
            bitline.stored_energy_j * 1.001
        )

    @given(nm=NODES, t_ns=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=60, deadline=None)
    def test_isolated_bitline_voltage_within_rails(self, nm, t_ns):
        bitline = Bitline(tech=get_technology(nm), rows=64)
        voltage = bitline.voltage_after_isolation(t_ns * 1e-9)
        assert 0.0 <= voltage <= bitline.tech.supply_voltage + 1e-12


class TestLedgerProperties:
    @given(
        intervals=st.lists(
            st.tuples(st.integers(min_value=0, max_value=31),
                      st.integers(min_value=0, max_value=5_000),
                      st.booleans()),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_relative_discharge_never_exceeds_static_baseline(self, intervals):
        org = cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)
        ledger = EnergyLedger(org.subarray, org.n_subarrays)
        per_subarray_total = {}
        for subarray, cycles, precharged in intervals:
            if precharged:
                ledger.note_precharged_interval(subarray, cycles)
            else:
                ledger.note_isolated_interval(subarray, cycles)
            per_subarray_total[subarray] = per_subarray_total.get(subarray, 0) + cycles
        total_cycles = max(1, max(per_subarray_total.values()))
        breakdown = ledger.breakdown(total_cycles)
        # No residency assignment can dissipate more than blind static pull-up
        # over the same subarray-cycles (toggle overhead excluded here).
        assert breakdown.precharged_discharge_j + breakdown.isolated_discharge_j <= (
            org.subarray.static_discharge_energy_per_cycle_j
            * sum(per_subarray_total.values())
            * (1 + 1e-9)
        )
        assert 0.0 <= breakdown.precharged_fraction <= 1.0


class TestPolicyProperties:
    @given(
        accesses=st.lists(
            st.tuples(st.integers(min_value=0, max_value=31),
                      st.integers(min_value=0, max_value=200)),
            min_size=1, max_size=80,
        ),
        threshold=st.sampled_from([10, 100, 1000]),
    )
    @settings(max_examples=40, deadline=None)
    def test_gated_residency_covers_the_whole_run(self, accesses, threshold):
        """Precharged + isolated subarray-cycles always equals subarrays x run length."""
        policy, ledger = make_attached(GatedPrechargePolicy(threshold=threshold))
        cycle = 0
        for subarray, advance in accesses:
            cycle += advance
            policy.access(subarray, cycle)
        end_cycle = cycle + 10
        policy.finalize(end_cycle)
        breakdown = ledger.breakdown(end_cycle)
        covered = breakdown.precharged_subarray_cycles + ledger._isolated_cycles
        assert covered == pytest.approx(32 * end_cycle, rel=1e-9)

    @given(
        accesses=st.lists(
            st.tuples(st.integers(min_value=0, max_value=31),
                      st.integers(min_value=1, max_value=500)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_oracle_never_delays_and_never_precharges_more_than_gated(self, accesses):
        oracle, oracle_ledger = make_attached(OraclePrechargePolicy())
        gated, gated_ledger = make_attached(GatedPrechargePolicy(threshold=100))
        cycle = 0
        for subarray, advance in accesses:
            cycle += advance
            assert oracle.access(subarray, cycle) == 0
            gated.access(subarray, cycle)
        end = cycle + 1
        oracle.finalize(end)
        gated.finalize(end)
        assert (
            oracle_ledger.breakdown(end).precharged_subarray_cycles
            <= gated_ledger.breakdown(end).precharged_subarray_cycles + 1e-9
        )

    @given(value=st.integers(min_value=0, max_value=100_000),
           threshold=st.integers(min_value=1, max_value=1023))
    @settings(max_examples=60, deadline=None)
    def test_decay_counter_saturation_and_hotness(self, value, threshold):
        counter = DecayCounter(threshold=threshold)
        counter.advance(value)
        assert 0 <= counter.value <= counter.saturation_value
        assert counter.is_hot == (counter.value < threshold)


class TestThresholdProperties:
    @given(
        gaps=st.lists(st.integers(min_value=0, max_value=20_000), min_size=1,
                      max_size=300),
        budget=st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_selected_threshold_is_admissible_or_most_conservative(self, gaps, budget):
        profile = ThresholdProfile(gaps=gaps, total_cycles=1_000_000)
        choice = select_threshold(profile, budget=budget)
        from repro.core.threshold import CANDIDATE_THRESHOLDS

        assert choice in CANDIDATE_THRESHOLDS
        if profile.estimated_slowdown(max(CANDIDATE_THRESHOLDS)) <= budget:
            assert profile.estimated_slowdown(choice) <= budget or (
                choice == max(CANDIDATE_THRESHOLDS)
            )

    @given(gaps=st.lists(st.integers(min_value=0, max_value=5000), min_size=1,
                         max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_slowdown_estimate_decreases_with_threshold(self, gaps):
        profile = ThresholdProfile(gaps=gaps, total_cycles=100_000)
        estimates = [profile.estimated_slowdown(t) for t in (10, 100, 1000)]
        assert estimates[0] >= estimates[1] >= estimates[2]


class TestMiscProperties:
    @given(
        outcomes=st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                                    st.booleans()), min_size=1, max_size=500)
    )
    @settings(max_examples=30, deadline=None)
    def test_branch_predictor_accuracy_is_well_defined(self, outcomes):
        predictor = CombinationPredictor()
        for pc_index, taken in outcomes:
            predictor.update(0x1000 + 4 * pc_index, taken)
        assert 0.0 <= predictor.stats.accuracy <= 1.0
        assert predictor.stats.predictions == len(outcomes)

    @given(
        cycles=st.lists(st.integers(min_value=0, max_value=100_000), min_size=2,
                        max_size=200)
    )
    @settings(max_examples=40, deadline=None)
    def test_tracker_cumulative_fraction_reaches_one(self, cycles):
        # A single subarray guarantees that every access after the first
        # records a gap, so the cumulative fraction must reach 1.0 for an
        # unboundedly large interval threshold.
        tracker = SubarrayTracker(1)
        for cycle in sorted(cycles):
            tracker.record_access(0, cycle)
        fractions = tracker.cumulative_access_fraction([10 ** 9])
        assert fractions[10 ** 9] == pytest.approx(1.0)

    @given(
        rows=st.lists(st.lists(st.integers(min_value=0, max_value=999), min_size=2,
                               max_size=2), min_size=1, max_size=10)
    )
    @settings(max_examples=30, deadline=None)
    def test_format_table_contains_every_cell(self, rows):
        text = format_table(["x", "y"], rows)
        for row in rows:
            for cell in row:
                assert str(cell) in text
