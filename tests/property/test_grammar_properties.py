"""Property-based tests for the scenario algebra and the fuzz generator.

Three families of invariant, all load-bearing:

* **Round-trip identity** — ``parse(unparse(ast)) == ast`` for arbitrary
  valid ASTs, and ``unparse`` is a fixpoint on canonical names.  The
  engine's cache keys equate scenarios through their canonical form, so
  a round-trip failure would silently alias distinct workloads.
* **Generated-AST validity** — every ``fuzz:SEED/DEPTH`` name resolves:
  the generator may only emit expressions the parser accepts and the
  workload layer can build.
* **Determinism** — the same expression and seed yield the identical
  instruction stream, across generator instances and across *processes*
  (``PYTHONHASHSEED`` must not leak in).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from itertools import islice
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.workloads.characteristics import benchmark_names
from repro.workloads.fuzzgen import (
    MAX_FUZZ_DEPTH,
    generate_scenario,
)
from repro.workloads.grammar import (
    MAX_LEAVES,
    Bench,
    Group,
    ScenarioError,
    iter_leaves,
    parse_scenario,
    unparse,
)
from repro.workloads.scenarios import ScenarioWorkload, resolve_workload

_NAMES = benchmark_names()

_weights = st.integers(min_value=1, max_value=16)
_scales = st.one_of(
    st.just(1.0),
    st.floats(min_value=0.125, max_value=8.0, allow_nan=False),
)
_slabs = st.one_of(st.none(), st.integers(min_value=20, max_value=40))

_benches = st.builds(
    Bench,
    name=st.sampled_from(_NAMES),
    weight=_weights,
    scale=_scales,
    slab=_slabs,
)


def _groups(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.builds(
        Group,
        family=st.sampled_from(["mix", "phases"]),
        children=st.lists(children, min_size=2, max_size=3).map(tuple),
        quantum=st.integers(min_value=1, max_value=10_000_000),
        weight=_weights,
        scale=_scales,
        slab=_slabs,
    )


_terms = st.recursive(_benches, _groups, max_leaves=6)

#: Roots never carry modifiers (the grammar attaches them to terms only).
_roots = _groups(_terms).map(
    lambda g: Group(family=g.family, children=g.children, quantum=g.quantum)
).filter(lambda g: len(list(iter_leaves(g))) <= MAX_LEAVES)


class TestRoundTrip:
    @given(root=_roots)
    @settings(max_examples=200, deadline=None)
    def test_parse_unparse_parse_is_identity(self, root):
        assert parse_scenario(unparse(root)) == root

    @given(root=_roots)
    @settings(max_examples=100, deadline=None)
    def test_unparse_is_a_fixpoint(self, root):
        canonical = unparse(root)
        assert unparse(parse_scenario(canonical)) == canonical

    @given(text=st.text(max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_parser_never_raises_anything_but_scenario_error(self, text):
        try:
            parse_scenario("mix:" + text)
        except ScenarioError:
            pass  # the only acceptable failure mode


class TestGeneratedValidity:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        depth=st.integers(min_value=1, max_value=MAX_FUZZ_DEPTH),
    )
    @settings(max_examples=150, deadline=None)
    def test_every_fuzz_seed_resolves(self, seed, depth):
        root = generate_scenario(seed, depth)
        # Canonical, within grammar bounds, and buildable.
        canonical = unparse(root)
        assert parse_scenario(canonical) == root
        assert len(list(iter_leaves(root))) <= MAX_LEAVES
        workload = resolve_workload(f"fuzz:{seed}/{depth}")
        assert isinstance(workload, ScenarioWorkload)
        assert next(workload.instructions()) is not None

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        depth=st.integers(min_value=1, max_value=MAX_FUZZ_DEPTH),
    )
    @settings(max_examples=50, deadline=None)
    def test_generation_is_deterministic(self, seed, depth):
        assert generate_scenario(seed, depth) == generate_scenario(seed, depth)


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        workload_seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_name_and_seed_yield_identical_streams(
        self, seed, workload_seed
    ):
        name = f"fuzz:{seed}/2"
        first = resolve_workload(name, seed=workload_seed)
        second = resolve_workload(name, seed=workload_seed)
        assert list(islice(first.instructions(), 400)) == list(
            islice(second.instructions(), 400)
        )

    def test_streams_are_identical_across_processes(self):
        # PYTHONHASHSEED randomises builtin hash() per process; the
        # stream digest must not move when it does.
        script = (
            "import hashlib\n"
            "from itertools import islice\n"
            "from repro.workloads.scenarios import resolve_workload\n"
            "for name in ('mix:(phases:gcc+mcf@300)*2+vortex@250', 'fuzz:11/3'):\n"
            "    w = resolve_workload(name, seed=9)\n"
            "    ops = repr(list(islice(w.instructions(), 1500)))\n"
            "    print(hashlib.sha256(ops.encode()).hexdigest())\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        digests = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(src)
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(proc.stdout)
        assert digests[0] == digests[1]
