"""Property-based tests for the PR-2 subsystems.

Hypothesis pins the invariants the fast path and trace format lean on:
decay-counter saturation (batched ``advance`` equals cycle-by-cycle
``tick``), energy-ledger non-negativity and additivity (splitting one
run's event stream in two and summing the breakdowns changes nothing),
and trace-file write→read round-trip identity.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.cache.energy_accounting import EnergyLedger
from repro.circuits.cacti import cache_organization
from repro.core.decay_counter import DecayCounter, DecayCounterBank
from repro.workloads.trace import MicroOp, OP_TYPES
from repro.workloads.tracefile import read_trace, write_trace


def _fresh_ledger() -> EnergyLedger:
    organization = cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)
    return EnergyLedger(organization.subarray, organization.n_subarrays)


# ----------------------------------------------------------------------
# Decay counters
# ----------------------------------------------------------------------
class TestDecayCounterProperties:
    @given(
        threshold=st.integers(min_value=0, max_value=1023),
        cycles=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=80, deadline=None)
    def test_batched_advance_equals_ticks(self, threshold, cycles):
        ticked = DecayCounter(threshold=threshold)
        advanced = DecayCounter(threshold=threshold)
        for _ in range(cycles):
            ticked.tick()
        advanced.advance(cycles)
        assert ticked.value == advanced.value
        assert ticked.is_hot == advanced.is_hot

    @given(
        bits=st.integers(min_value=1, max_value=12),
        cycles=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_counter_saturates_and_never_overflows(self, bits, cycles):
        counter = DecayCounter(threshold=0, bits=bits)
        counter.advance(cycles)
        assert 0 <= counter.value <= counter.saturation_value
        assert counter.value == min(cycles, (1 << bits) - 1)
        counter.advance(1)
        assert counter.value <= counter.saturation_value

    @given(
        threshold=st.integers(min_value=1, max_value=1023),
        splits=st.lists(
            st.integers(min_value=0, max_value=400), min_size=1, max_size=10
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_advance_is_additive(self, threshold, splits):
        split = DecayCounter(threshold=threshold)
        for step in splits:
            split.advance(step)
        whole = DecayCounter(threshold=threshold)
        whole.advance(sum(splits))
        assert split.value == whole.value

    @given(threshold=st.integers(min_value=1, max_value=1023))
    @settings(max_examples=40, deadline=None)
    def test_reset_restores_hot(self, threshold):
        counter = DecayCounter(threshold=threshold)
        counter.advance(threshold + 50)
        assert not counter.is_hot
        counter.reset()
        assert counter.value == 0
        assert counter.is_hot


class TestDecayCounterBankProperties:
    @given(
        n_counters=st.integers(min_value=1, max_value=32),
        threshold=st.integers(min_value=0, max_value=1023),
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=600),   # advance amount
                st.integers(min_value=0, max_value=31),    # counter to reset
            ),
            min_size=0,
            max_size=20,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_bank_matches_scalar_counters(self, n_counters, threshold, schedule):
        bank = DecayCounterBank(n_counters, threshold=threshold)
        scalars = [DecayCounter(threshold=threshold) for _ in range(n_counters)]
        for amount, reset_index in schedule:
            bank.advance(amount)
            for counter in scalars:
                counter.advance(amount)
            index = reset_index % n_counters
            bank.reset(index)
            scalars[index].reset()
        assert bank.values == [counter.value for counter in scalars]
        assert [bank.is_hot(i) for i in range(n_counters)] == [
            counter.is_hot for counter in scalars
        ]
        assert bank.hot_count() == sum(counter.is_hot for counter in scalars)
        assert [c.value for c in bank.counters()] == bank.values


# ----------------------------------------------------------------------
# Energy ledger
# ----------------------------------------------------------------------
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["precharged", "isolated", "toggle", "access"]),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=5_000),
    ),
    min_size=0,
    max_size=80,
)


def _apply(ledger: EnergyLedger, events) -> None:
    for kind, subarray, cycles in events:
        if kind == "precharged":
            ledger.note_precharged_interval(subarray, cycles)
        elif kind == "isolated":
            ledger.note_isolated_interval(subarray, cycles)
        elif kind == "toggle":
            ledger.note_toggle(subarray)
        else:
            ledger.note_access(subarray)


class TestLedgerProperties:
    @given(events=_EVENTS, total_cycles=st.integers(min_value=1, max_value=200_000))
    @settings(max_examples=60, deadline=None)
    def test_breakdown_fields_are_non_negative(self, events, total_cycles):
        ledger = _fresh_ledger()
        _apply(ledger, events)
        breakdown = ledger.breakdown(total_cycles)
        for field in dataclasses.fields(breakdown):
            assert getattr(breakdown, field.name) >= 0.0

    @given(
        events=_EVENTS,
        split_at=st.integers(min_value=0, max_value=80),
        total_cycles=st.integers(min_value=1, max_value=200_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_breakdown_is_additive_over_event_streams(
        self, events, split_at, total_cycles
    ):
        split_at = min(split_at, len(events))
        whole = _fresh_ledger()
        _apply(whole, events)
        first = _fresh_ledger()
        _apply(first, events[:split_at])
        second = _fresh_ledger()
        _apply(second, events[split_at:])

        expected = whole.breakdown(total_cycles)
        a = first.breakdown(total_cycles)
        b = second.breakdown(total_cycles)
        # The static reference and capacity terms depend only on the run
        # length, not on the events; the accumulated terms must add up.
        assert a.static_reference_j == expected.static_reference_j
        assert a.total_subarray_cycles == expected.total_subarray_cycles
        for field in (
            "precharged_discharge_j",
            "isolated_discharge_j",
            "toggle_overhead_j",
            "dynamic_access_j",
            "precharged_subarray_cycles",
        ):
            combined = getattr(a, field) + getattr(b, field)
            reference = getattr(expected, field)
            assert abs(combined - reference) <= 1e-12 * max(1.0, abs(reference))


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------
_REGISTERS = st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << 31) - 1))
_ADDRESSES = st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << 62) - 1))

_MICRO_OPS = st.builds(
    MicroOp,
    op_type=st.sampled_from(OP_TYPES),
    pc=st.integers(min_value=0, max_value=(1 << 62) - 1),
    dest=_REGISTERS,
    src1=_REGISTERS,
    src2=_REGISTERS,
    address=_ADDRESSES,
    base_address=_ADDRESSES,
    taken=st.booleans(),
    target=_ADDRESSES,
)


class TestTraceFileProperties:
    @given(ops=st.lists(_MICRO_OPS, min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_write_read_round_trip_identity(self, ops, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "roundtrip.trace.gz"
        written = write_trace(path, ops, meta={"benchmark": "prop"})
        assert written == len(ops)
        assert list(read_trace(path)) == ops
