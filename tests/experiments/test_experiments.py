"""Tests for the experiment modules (tables, figures, report formatting)."""

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure5,
    figure6,
    figure10,
    format_figure2,
    format_figure3,
    format_figure8,
    format_figure9,
    format_figure10,
    format_ondemand,
    format_percent,
    format_predecode_accuracy,
    format_series,
    format_table,
    format_table1,
    format_table2,
    format_table3,
    ondemand_slowdown,
    predecode_accuracy,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.experiments.figure8 import figure8
from repro.experiments.figure9 import figure9

#: A small, fast benchmark subset used to keep these tests quick; the full
#: sixteen-benchmark sweeps run in the benchmark harness.
FAST_BENCHMARKS = ["gcc", "treeadd"]
FAST_INSTRUCTIONS = 4_000


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.834) == "83.4%"
        assert format_percent(0.834, digits=0) == "83%"

    def test_format_table_aligns_columns(self):
        text = format_table(["a", "long header"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        assert format_series("x", [(1, 0.5)], "{:.1f}") == "x: 1: 0.5"


class TestStaticTables:
    def test_table1_matches_paper(self):
        rows = table1_rows()
        assert [r.feature_size_nm for r in rows] == [180, 130, 100, 70]
        assert rows[-1].supply_voltage == pytest.approx(1.0)
        assert "1.8" in format_table1()

    def test_table2_lists_all_parameters(self):
        rows = dict(table2_rows())
        assert rows["Issue & decode"] == "8 instructions per cycle"
        assert "32K" in rows["L1 d-cache"]
        assert "512K" in rows["L2 unified cache"]
        assert "Table 2" in format_table2()

    def test_table3_pull_up_always_exceeds_final_decode(self):
        for row in table3_rows():
            assert row.pull_up_exceeds_final_decode
        assert "Worst-case pull-up" in format_table3()

    def test_table3_covers_both_subarray_sizes_and_all_nodes(self):
        rows = table3_rows()
        assert len(rows) == 8
        assert {row.subarray_bytes for row in rows} == {1024, 4096}


class TestCircuitFigures:
    def test_figure2_trend(self):
        result = figure2(samples=31)
        assert result.peak_overhead_percent(180) == pytest.approx(195, rel=0.03)
        assert result.peak_overhead_percent(70) < 105
        assert result.settling_time_ns(70) < result.settling_time_ns(180)
        assert "Figure 2" in format_figure2(result)

    def test_figure2_series_is_time_ordered(self):
        result = figure2(samples=31)
        series = result.series(70)
        times = [t for t, _ in series]
        assert times == sorted(times)


class TestArchitecturalExperiments:
    def test_figure3_oracle_saves_most_discharge(self):
        result = figure3(benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS)
        assert result.average_discharge_savings_dcache > 0.6
        assert result.average_discharge_savings_icache > 0.6
        assert "AVG" in format_figure3(result)

    def test_ondemand_slowdown_positive_for_both_caches(self):
        result = ondemand_slowdown(
            benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS
        )
        assert result.average_dcache_slowdown > 0
        assert result.average_icache_slowdown > 0
        assert "Section 5" in format_ondemand(result)

    def test_figure5_cumulative_distributions_monotone(self):
        result = figure5(benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS)
        for table in (result.dcache, result.icache):
            for series in table.values():
                values = [series[t] for t in sorted(series)]
                assert values == sorted(values)
                assert values[-1] <= 1.0

    def test_figure6_hot_fraction_small_at_100_cycles(self):
        result = figure6(benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS)
        assert result.average_hot_fraction("dcache", 100) < 0.6
        for series in result.dcache.values():
            values = [series[t] for t in sorted(series)]
            assert values == sorted(values)

    def test_predecode_accuracy_higher_for_larger_subarrays(self):
        result = predecode_accuracy(
            benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS
        )
        assert result.average_accuracy(1024) > result.average_accuracy(64)
        assert 0.4 < result.average_accuracy(1024) <= 1.0
        assert "Predecoding" in format_predecode_accuracy(result)

    def test_figure8_gated_results(self):
        result = figure8(benchmarks=FAST_BENCHMARKS, n_instructions=FAST_INSTRUCTIONS)
        assert result.average_dcache_discharge_reduction > 0.5
        assert result.average_icache_discharge_reduction > 0.7
        assert result.average_dcache_precharged < 0.4
        assert abs(result.average_slowdown) < 0.05
        assert "Figure 8" in format_figure8(result)

    def test_figure9_gated_beats_resizable_at_70nm(self):
        result = figure9(
            benchmarks=FAST_BENCHMARKS, nodes=[180, 70], n_instructions=FAST_INSTRUCTIONS
        )
        assert result.gated_beats_resizable_at(70)
        # Gated precharging improves toward 70nm; resizable stays flat-ish.
        assert result.gated_dcache[70] < result.gated_dcache[180]
        assert "Figure 9" in format_figure9(result)

    def test_figure10_smaller_subarrays_precharge_fewer(self):
        result = figure10(
            benchmarks=FAST_BENCHMARKS,
            subarray_sizes=(4096, 1024, 256),
            n_instructions=FAST_INSTRUCTIONS,
        )
        assert result.monotonic_improvement("dcache")
        assert result.monotonic_improvement("icache")
        assert "Figure 10" in format_figure10(result)
