"""Golden-result snapshots: every experiment matches its stored JSON.

A failure here means the simulation model's numbers drifted.  If the
drift is intentional (a model fix), regenerate with::

    python -m repro regen-goldens

and commit the updated ``tests/experiments/goldens/*.json`` alongside
the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.goldens import compute_golden, write_goldens
from repro.experiments.registry import experiment_names

GOLDEN_DIR = Path(__file__).parent / "goldens"


def test_every_experiment_has_a_golden() -> None:
    stored = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert stored == set(experiment_names())


@pytest.mark.parametrize("name", experiment_names())
def test_experiment_matches_golden(name: str) -> None:
    golden_path = GOLDEN_DIR / f"{name}.json"
    stored = json.loads(golden_path.read_text(encoding="utf-8"))
    computed = json.loads(json.dumps(compute_golden(name)))
    assert computed == stored, (
        f"experiment {name!r} drifted from its golden snapshot; if this "
        "change is intentional, run `python -m repro regen-goldens`. "
        "(On non-glibc platforms, last-ulp libm differences can trip "
        "this without any model change — see repro/experiments/goldens.py.)"
    )


def test_write_goldens_round_trips(tmp_path) -> None:
    written = write_goldens(tmp_path)
    assert {path.stem for path in written} == set(experiment_names())
    for path in written:
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["experiment"] == path.stem
        assert "result" in payload and "formatted" in payload
