"""Tests for the bitline model: discharge, decay, pull-up timing."""

import math

import pytest

from repro.circuits.bitline import Bitline
from repro.circuits.technology import available_nodes, get_technology


class TestGeometry:
    def test_capacitance_grows_with_rows(self, tech70):
        assert (
            Bitline(tech=tech70, rows=128).capacitance_f
            > Bitline(tech=tech70, rows=32).capacitance_f
        )

    def test_invalid_rows_rejected(self, tech70):
        with pytest.raises(ValueError):
            Bitline(tech=tech70, rows=0)

    def test_invalid_ports_rejected(self, tech70):
        with pytest.raises(ValueError):
            Bitline(tech=tech70, rows=32, ports=0)


class TestStaticDischarge:
    def test_discharge_power_proportional_to_rows(self, tech70):
        small = Bitline(tech=tech70, rows=32)
        large = Bitline(tech=tech70, rows=64)
        assert large.static_discharge_power_w == pytest.approx(
            2 * small.static_discharge_power_w
        )

    def test_static_energy_linear_in_time(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        assert bitline.static_discharge_energy_j(2e-9) == pytest.approx(
            2 * bitline.static_discharge_energy_j(1e-9)
        )

    def test_discharge_power_grows_toward_70nm(self):
        powers = [
            Bitline(tech=get_technology(nm), rows=32).static_discharge_power_w
            for nm in available_nodes()
        ]
        # Leakage growth dominates the Vdd reduction.
        assert powers == sorted(powers)


class TestIsolationDecay:
    def test_voltage_decays_from_vdd(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        assert bitline.voltage_after_isolation(0.0) == pytest.approx(tech70.supply_voltage)
        tau = bitline.decay_time_constant_s
        assert bitline.voltage_after_isolation(tau) == pytest.approx(
            tech70.supply_voltage / math.e, rel=1e-6
        )

    def test_negative_time_rejected(self, tech70):
        with pytest.raises(ValueError):
            Bitline(tech=tech70, rows=32).voltage_after_isolation(-1.0)

    def test_short_isolation_saves_little(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        short = 0.01 * bitline.decay_time_constant_s
        isolated = bitline.isolated_discharge_energy_j(short)
        static = bitline.static_discharge_energy_j(short)
        assert isolated == pytest.approx(static, rel=0.05)

    def test_long_isolation_bounded_by_stored_charge(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        very_long = 100 * bitline.decay_time_constant_s
        isolated = bitline.isolated_discharge_energy_j(very_long)
        static = bitline.static_discharge_energy_j(very_long)
        assert isolated < 0.02 * static
        # The bound is the energy initially stored on the bitline.
        assert isolated == pytest.approx(bitline.stored_energy_j, rel=0.05)

    def test_isolated_discharge_monotone_in_time(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        times = [0.0, 1e-9, 5e-9, 20e-9, 100e-9]
        energies = [bitline.isolated_discharge_energy_j(t) for t in times]
        assert energies == sorted(energies)

    def test_decay_time_constant_shrinks_with_scaling(self):
        taus = [
            Bitline(tech=get_technology(nm), rows=32).decay_time_constant_s
            for nm in available_nodes()
        ]
        assert taus == sorted(taus, reverse=True)


class TestPullUpTiming:
    def test_worst_case_pull_up_slower_than_read_restore(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        assert bitline.worst_case_pull_up_s > bitline.active_read_restore_s

    def test_pull_up_matches_table3_at_180nm_1kb(self):
        # Table 3: 1KB subarray (32 rows of 32-byte lines), 180nm -> 0.39 ns.
        bitline = Bitline(tech=get_technology(180), rows=32)
        assert bitline.worst_case_pull_up_s * 1e9 == pytest.approx(0.39, rel=0.05)

    def test_pull_up_shrinks_with_scaling(self):
        delays = [
            Bitline(tech=get_technology(nm), rows=32).worst_case_pull_up_s
            for nm in available_nodes()
        ]
        assert delays == sorted(delays, reverse=True)

    def test_longer_bitlines_pull_up_slower(self, tech70):
        assert (
            Bitline(tech=tech70, rows=128).worst_case_pull_up_s
            > Bitline(tech=tech70, rows=32).worst_case_pull_up_s
        )


class TestRechargeAndToggle:
    def test_recharge_energy_grows_with_idle_time(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        assert bitline.recharge_energy_j(100e-9) > bitline.recharge_energy_j(1e-9)

    def test_toggle_energy_covers_two_transitions(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        assert bitline.isolation_toggle_energy_j == pytest.approx(
            2 * bitline.precharge_device.switching_energy_j
        )

    def test_negative_idle_rejected(self, tech70):
        bitline = Bitline(tech=tech70, rows=32)
        with pytest.raises(ValueError):
            bitline.isolated_discharge_energy_j(-1.0)
        with pytest.raises(ValueError):
            bitline.static_discharge_energy_j(-1.0)
