"""Tests for the SRAM cell, precharge device, wire and sense-amp models."""

import pytest

from repro.circuits.precharge_device import DEFAULT_SIZE_RATIO, PrechargeDevice
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.sram_cell import READ_DISCHARGE_SWING_V, SRAMCell
from repro.circuits.technology import get_technology
from repro.circuits.wires import Wire


class TestSRAMCell:
    def test_default_access_width_is_positive(self, tech70):
        cell = SRAMCell(tech=tech70)
        assert cell.access_width_um > 0

    def test_leakage_scales_with_technology(self, tech70, tech180):
        old = SRAMCell(tech=tech180)
        new = SRAMCell(tech=tech70)
        # Leakage current per cell grows despite the smaller transistor.
        assert new.bitline_leakage_current_a > old.bitline_leakage_current_a

    def test_multi_port_cell_leaks_proportionally_more_power(self, tech70):
        single = SRAMCell(tech=tech70, ports=1)
        dual = SRAMCell(tech=tech70, ports=2)
        assert dual.cell_leakage_power_w == pytest.approx(2 * single.cell_leakage_power_w)

    def test_read_discharge_energy_uses_small_swing(self, tech70):
        cell = SRAMCell(tech=tech70)
        cap = 20e-15
        expected = cap * tech70.supply_voltage * READ_DISCHARGE_SWING_V
        assert cell.read_discharge_energy_j(cap) == pytest.approx(expected)

    def test_invalid_port_count_rejected(self, tech70):
        with pytest.raises(ValueError):
            SRAMCell(tech=tech70, ports=0)

    def test_read_current_positive(self, tech70):
        assert SRAMCell(tech=tech70).read_current_a > 0


class TestPrechargeDevice:
    def test_sized_ten_times_cell_by_default(self, tech70):
        cell = SRAMCell(tech=tech70)
        device = PrechargeDevice.sized_from_cell(tech70, cell.access_width_um)
        assert device.width_um == pytest.approx(DEFAULT_SIZE_RATIO * cell.access_width_um)

    def test_switching_energy_is_half_cv_squared(self, tech70):
        device = PrechargeDevice(tech=tech70, width_um=1.0)
        expected = 0.5 * device.gate_cap_f * tech70.supply_voltage ** 2
        assert device.switching_energy_j == pytest.approx(expected)

    def test_switching_energy_shrinks_with_scaling(self):
        old_cell = SRAMCell(tech=get_technology(180))
        new_cell = SRAMCell(tech=get_technology(70))
        old = PrechargeDevice.sized_from_cell(get_technology(180), old_cell.access_width_um)
        new = PrechargeDevice.sized_from_cell(get_technology(70), new_cell.access_width_um)
        assert new.switching_energy_j < old.switching_energy_j

    def test_bigger_device_pulls_up_faster(self, tech70):
        small = PrechargeDevice(tech=tech70, width_um=1.0)
        big = PrechargeDevice(tech=tech70, width_um=4.0)
        cap, swing = 50e-15, 1.0
        assert big.pull_up_time_s(cap, swing) < small.pull_up_time_s(cap, swing)

    def test_zero_swing_needs_no_time(self, tech70):
        device = PrechargeDevice(tech=tech70, width_um=1.0)
        assert device.pull_up_time_s(50e-15, 0.0) == 0.0

    def test_negative_inputs_rejected(self, tech70):
        device = PrechargeDevice(tech=tech70, width_um=1.0)
        with pytest.raises(ValueError):
            device.pull_up_time_s(-1e-15, 1.0)
        with pytest.raises(ValueError):
            PrechargeDevice.sized_from_cell(tech70, 1.0, size_ratio=0)

    def test_off_leakage_much_smaller_than_drive(self, tech70):
        device = PrechargeDevice(tech=tech70, width_um=2.0)
        assert device.off_leakage_current_a < device.drive_current_a / 100


class TestWire:
    def test_capacitance_and_resistance_scale_with_length(self, tech70):
        short = Wire(tech=tech70, length_um=10)
        long = Wire(tech=tech70, length_um=100)
        assert long.capacitance_f == pytest.approx(10 * short.capacitance_f)
        assert long.resistance_ohm == pytest.approx(10 * short.resistance_ohm)

    def test_elmore_delay_grows_quadratically(self, tech70):
        short = Wire(tech=tech70, length_um=50)
        long = Wire(tech=tech70, length_um=100)
        assert long.elmore_delay_s == pytest.approx(4 * short.elmore_delay_s)

    def test_loaded_delay_exceeds_unloaded(self, tech70):
        wire = Wire(tech=tech70, length_um=100)
        assert wire.delay_with_load_s(10e-15, 1000) > wire.elmore_delay_s

    def test_negative_length_rejected(self, tech70):
        with pytest.raises(ValueError):
            Wire(tech=tech70, length_um=-1)


class TestSenseAmplifier:
    def test_energy_positive_and_scales_down(self):
        old = SenseAmplifier(tech=get_technology(180))
        new = SenseAmplifier(tech=get_technology(70))
        assert 0 < new.energy_per_read_j < old.energy_per_read_j

    def test_delay_tracks_fo4(self, tech70, tech180):
        ratio = SenseAmplifier(tech=tech70).delay_s / SenseAmplifier(tech=tech180).delay_s
        assert ratio == pytest.approx(tech70.fo4_delay_ps / tech180.fo4_delay_ps)
