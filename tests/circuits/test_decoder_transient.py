"""Tests for the decoder timing model (Table 3) and isolation transient (Figure 2)."""

import pytest

from repro.circuits.decoder import MAX_SUBARRAYS_WITHOUT_COMBINE, decoder_timing
from repro.circuits.technology import available_nodes, get_technology
from repro.circuits.transient import isolation_transient


class TestDecoderTiming:
    def test_stage_delays_positive(self, tech70):
        timing = decoder_timing(tech70, n_subarrays=32, rows_per_subarray=32)
        assert timing.decode_drive_s > 0
        assert timing.predecode_s > 0
        assert timing.final_decode_s > 0

    def test_matches_table3_at_180nm_1kb(self):
        timing = decoder_timing(get_technology(180), n_subarrays=32, rows_per_subarray=32)
        assert timing.decode_drive_s * 1e9 == pytest.approx(0.25, rel=0.05)
        assert timing.predecode_s * 1e9 == pytest.approx(0.28, rel=0.05)
        assert timing.final_decode_s * 1e9 == pytest.approx(0.20, rel=0.05)

    def test_delays_shrink_with_scaling(self):
        totals = [
            decoder_timing(get_technology(nm), 32, 32).total_decode_s
            for nm in available_nodes()
        ]
        assert totals == sorted(totals, reverse=True)

    def test_fewer_subarrays_decode_faster(self, tech70):
        many = decoder_timing(tech70, n_subarrays=32, rows_per_subarray=32)
        few = decoder_timing(tech70, n_subarrays=8, rows_per_subarray=128)
        assert few.decode_drive_s < many.decode_drive_s

    def test_partial_decode_needs_extra_combining_beyond_eight_subarrays(self, tech70):
        small = decoder_timing(tech70, n_subarrays=MAX_SUBARRAYS_WITHOUT_COMBINE,
                               rows_per_subarray=128)
        large = decoder_timing(tech70, n_subarrays=32, rows_per_subarray=32)
        # With <= 8 subarrays identification completes exactly at predecode.
        assert small.subarray_identify_s == pytest.approx(
            small.decode_drive_s + small.predecode_s
        )
        assert large.subarray_identify_s > large.decode_drive_s + large.predecode_s

    def test_precharge_margin_is_final_stage_or_less(self, tech70):
        timing = decoder_timing(tech70, n_subarrays=32, rows_per_subarray=32)
        assert timing.precharge_margin_s <= timing.final_decode_s
        assert timing.precharge_margin_s > 0

    def test_on_demand_fits_helper(self, tech70):
        timing = decoder_timing(tech70, n_subarrays=32, rows_per_subarray=32)
        assert timing.on_demand_fits(timing.precharge_margin_s * 0.5)
        assert not timing.on_demand_fits(timing.precharge_margin_s * 2.0)

    def test_degenerate_inputs_rejected(self, tech70):
        with pytest.raises(ValueError):
            decoder_timing(tech70, n_subarrays=0, rows_per_subarray=32)
        with pytest.raises(ValueError):
            decoder_timing(tech70, n_subarrays=32, rows_per_subarray=0)


class TestIsolationTransient:
    def test_peak_overhead_195_percent_at_180nm(self):
        transient = isolation_transient(get_technology(180))
        assert transient.peak_normalized_power == pytest.approx(1.95, rel=0.02)

    def test_overhead_insignificant_at_70nm(self):
        transient = isolation_transient(get_technology(70))
        assert transient.switching_overhead < 0.01
        assert transient.peak_normalized_power < 1.05

    def test_overhead_decreases_monotonically_with_scaling(self):
        overheads = [
            isolation_transient(get_technology(nm)).switching_overhead
            for nm in available_nodes()
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_settling_faster_in_newer_technology(self):
        settle_180 = isolation_transient(get_technology(180)).settling_time_s
        settle_70 = isolation_transient(get_technology(70)).settling_time_s
        assert settle_70 < settle_180

    def test_power_decays_towards_zero(self, tech70):
        transient = isolation_transient(tech70)
        first = transient.samples[0].normalized_power
        last = transient.samples[-1].normalized_power
        assert first > last
        assert last < 0.05

    def test_samples_cover_requested_duration(self, tech70):
        transient = isolation_transient(tech70, duration_s=100e-9, samples=11)
        assert len(transient.samples) == 11
        assert transient.samples[0].time_s == 0.0
        assert transient.samples[-1].time_s == pytest.approx(100e-9)

    def test_power_at_matches_sample_values(self, tech70):
        transient = isolation_transient(tech70)
        for point in transient.samples[:5]:
            assert transient.power_at(point.time_s) == pytest.approx(
                point.normalized_power
            )

    def test_invalid_arguments_rejected(self, tech70):
        with pytest.raises(ValueError):
            isolation_transient(tech70, samples=1)
        with pytest.raises(ValueError):
            isolation_transient(tech70, duration_s=0.0)
