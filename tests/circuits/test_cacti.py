"""Tests for the cache-organisation (CACTI-like) and subarray circuit models."""

import pytest

from repro.circuits.cacti import CacheOrganization, cache_organization
from repro.circuits.subarray_circuit import subarray_circuit
from repro.circuits.technology import available_nodes, get_technology


class TestGeometry:
    def test_base_l1_has_32_subarrays(self, l1_org):
        assert l1_org.n_subarrays == 32
        assert l1_org.n_sets == 512
        assert l1_org.n_lines == 1024
        assert l1_org.lines_per_subarray == 32

    def test_sets_map_to_subarrays_contiguously(self, l1_org):
        assert l1_org.subarray_for_set(0) == 0
        assert l1_org.subarray_for_set(l1_org.sets_per_subarray) == 1
        assert l1_org.subarray_for_set(l1_org.n_sets - 1) == l1_org.n_subarrays - 1

    def test_subarray_for_address_consistent_with_set_mapping(self, l1_org):
        address = 0x1234_5678
        set_index = (address >> l1_org.offset_bits) % l1_org.n_sets
        assert l1_org.subarray_for_address(address) == l1_org.subarray_for_set(set_index)

    def test_out_of_range_set_rejected(self, l1_org):
        with pytest.raises(ValueError):
            l1_org.subarray_for_set(l1_org.n_sets)

    def test_invalid_organisations_rejected(self, tech70):
        with pytest.raises(ValueError):
            CacheOrganization(tech70, 32 * 1024, 32, 2, subarray_bytes=16)
        with pytest.raises(ValueError):
            CacheOrganization(tech70, 32 * 1024 + 1, 32, 2, subarray_bytes=1024)
        with pytest.raises(ValueError):
            CacheOrganization(tech70, 32 * 1024, 32, 0, subarray_bytes=1024)

    def test_subarray_size_sets_count(self, tech70):
        for size, expected in [(4096, 8), (1024, 32), (256, 128), (64, 512)]:
            org = cache_organization(70, 32 * 1024, 32, 2, size)
            assert org.n_subarrays == expected


class TestTimingAndPenalty:
    def test_access_latency_reasonable(self, l1_org):
        assert 1 <= l1_org.access_latency_cycles <= 5

    def test_isolated_access_penalty_always_at_least_one_cycle(self):
        # The Table 3 conclusion: the pull-up never hides in the decode margin.
        for nm in available_nodes():
            for subarray_bytes in (1024, 4096):
                org = cache_organization(nm, 32 * 1024, 32, 2, subarray_bytes)
                assert org.isolated_access_penalty_cycles >= 1

    def test_timing_total_is_sum_of_stages(self, l1_org):
        timing = l1_org.timing
        assert timing.total_s == pytest.approx(
            timing.decode_s + timing.bitline_sense_s + timing.output_drive_s
        )

    def test_cached_constructor_returns_same_object(self):
        a = cache_organization(70, 32 * 1024, 32, 2, 1024)
        b = cache_organization(70, 32 * 1024, 32, 2, 1024)
        assert a is b


class TestSubarrayCircuit:
    def test_static_discharge_scales_with_ports(self):
        single = subarray_circuit(70, 1024, ports=1)
        dual = subarray_circuit(70, 1024, ports=2)
        assert dual.static_discharge_power_w == pytest.approx(
            2 * single.static_discharge_power_w
        )

    def test_whole_cache_discharge_is_subarrays_times_one(self, l1_org):
        per_subarray = l1_org.subarray.static_discharge_energy_per_cycle_j
        assert l1_org.static_discharge_energy_per_cycle_j == pytest.approx(
            l1_org.n_subarrays * per_subarray
        )

    def test_isolated_discharge_less_than_static_for_long_idle(self):
        circuit = subarray_circuit(70, 1024, ports=2)
        idle_cycles = 10_000
        static = circuit.static_discharge_energy_per_cycle_j * idle_cycles
        assert circuit.isolated_discharge_energy_j(idle_cycles) < 0.2 * static

    def test_toggle_energy_positive_and_scales_with_columns(self):
        small = subarray_circuit(70, 1024, line_bytes=32)
        wide = subarray_circuit(70, 2048, line_bytes=64)
        assert small.toggle_switching_energy_j > 0
        assert wide.toggle_switching_energy_j > small.toggle_switching_energy_j

    def test_read_access_energy_positive(self):
        assert subarray_circuit(70, 1024).read_access_energy_j > 0

    def test_geometry_counts(self):
        circuit = subarray_circuit(70, 1024, line_bytes=32, ports=2)
        assert circuit.rows == 32
        assert circuit.columns == 256
        assert circuit.bitlines_per_column == 4
        assert circuit.total_bitlines == 1024

    def test_invalid_geometry_rejected(self, tech70):
        from repro.circuits.subarray_circuit import SubarrayCircuit

        with pytest.raises(ValueError):
            SubarrayCircuit(tech=tech70, subarray_bytes=16, line_bytes=32,
                            ports=1, n_subarrays=32)
        with pytest.raises(ValueError):
            SubarrayCircuit(tech=tech70, subarray_bytes=1024, line_bytes=32,
                            ports=0, n_subarrays=32)
