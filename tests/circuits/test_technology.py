"""Tests for the technology-node models (Table 1 and scaling rules)."""

import pytest

from repro.circuits.technology import (
    LEAKAGE_SCALING_PER_GENERATION,
    SWITCHING_SCALING_PER_GENERATION,
    TECHNOLOGY_NODES,
    available_nodes,
    get_technology,
)


class TestTable1Parameters:
    def test_four_nodes_modelled(self):
        assert available_nodes() == [180, 130, 100, 70]

    @pytest.mark.parametrize(
        "nm,vdd,ghz",
        [(180, 1.8, 2.0), (130, 1.5, 2.7), (100, 1.2, 3.5), (70, 1.0, 5.0)],
    )
    def test_published_supply_and_frequency(self, nm, vdd, ghz):
        node = get_technology(nm)
        assert node.supply_voltage == pytest.approx(vdd)
        assert node.clock_frequency_ghz == pytest.approx(ghz)

    def test_cycle_time_is_reciprocal_of_frequency(self):
        node = get_technology(70)
        assert node.cycle_time_ns == pytest.approx(0.2)
        assert node.cycle_time_s == pytest.approx(0.2e-9)

    def test_fo4_tracks_eight_per_cycle(self):
        for nm in available_nodes():
            node = get_technology(nm)
            assert 8 * node.fo4_delay_ps == pytest.approx(node.cycle_time_ns * 1e3)

    def test_feature_size_in_microns(self):
        assert get_technology(180).feature_size_um == pytest.approx(0.18)
        assert get_technology(70).feature_size_um == pytest.approx(0.07)


class TestScalingRules:
    def test_generation_indices_increase_with_scaling(self):
        indices = [get_technology(nm).generation_index for nm in available_nodes()]
        assert indices == [0, 1, 2, 3]

    def test_leakage_grows_3_5x_per_generation(self):
        for nm in available_nodes():
            node = get_technology(nm)
            assert node.relative_leakage == pytest.approx(
                LEAKAGE_SCALING_PER_GENERATION ** node.generation_index
            )

    def test_switching_halves_per_generation(self):
        for nm in available_nodes():
            node = get_technology(nm)
            assert node.relative_switching == pytest.approx(
                SWITCHING_SCALING_PER_GENERATION ** node.generation_index
            )

    def test_leakage_to_switching_ratio_grows_7x_per_generation(self):
        n180 = get_technology(180)
        n70 = get_technology(70)
        assert n70.leakage_to_switching_ratio / n180.leakage_to_switching_ratio == (
            pytest.approx(7.0 ** 3)
        )

    def test_leakage_current_increases_with_scaling(self):
        currents = [get_technology(nm).leakage_current_na_per_um for nm in available_nodes()]
        assert currents == sorted(currents)

    def test_scaled_from_counts_generations(self):
        assert get_technology(70).scaled_from(get_technology(180)) == 3
        assert get_technology(180).scaled_from(get_technology(70)) == -3


class TestLookup:
    def test_unknown_node_raises_key_error(self):
        with pytest.raises(KeyError, match="valid nodes"):
            get_technology(90)

    def test_nodes_are_frozen(self):
        node = get_technology(70)
        with pytest.raises(AttributeError):
            node.supply_voltage = 2.0

    def test_registry_keys_match_feature_sizes(self):
        for nm, node in TECHNOLOGY_NODES.items():
            assert node.feature_size_nm == nm
