"""Structured JSON logging: line shape, trace ids, failure tolerance."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _disabled():
    obs_log.disable()
    yield
    obs_log.disable()


def test_off_by_default_and_noop():
    assert not obs_log.enabled()
    obs_log.event("anything", job_id="j-1")  # must not raise


def test_event_emits_one_json_line_with_trace_id():
    stream = io.StringIO()
    obs_log.enable(stream)
    obs_log.event("job.submitted", trace_id="ab" * 8, job_id="j-1", units=3)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["event"] == "job.submitted"
    assert record["trace_id"] == "ab" * 8
    assert record["job_id"] == "j-1" and record["units"] == 3
    assert isinstance(record["ts"], float)


def test_trace_id_omitted_when_absent():
    stream = io.StringIO()
    obs_log.enable(stream)
    obs_log.event("tick")
    assert "trace_id" not in json.loads(stream.getvalue())


def test_unserializable_fields_degrade_not_raise():
    stream = io.StringIO()
    obs_log.enable(stream)
    obs_log.event("weird", payload=object())
    record = json.loads(stream.getvalue())
    # default=str stringifies arbitrary objects; the line stays valid.
    assert record["event"] == "weird"


def test_closed_stream_is_swallowed():
    stream = io.StringIO()
    obs_log.enable(stream)
    stream.close()
    obs_log.event("tick")  # must not raise
