"""repro.obs.trace: ids, the propagation header, and the span ring."""

from __future__ import annotations

import threading

import pytest

from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _no_global_recorder():
    """Tests install their own recorders; never leak one across tests."""
    yield
    obs_trace.clear_recorder()
    obs_trace.clear_current()


class TestIds:
    def test_trace_id_is_16_hex_chars(self):
        tid = obs_trace.new_trace_id()
        assert len(tid) == 16
        int(tid, 16)

    def test_span_id_is_8_hex_chars(self):
        sid = obs_trace.new_span_id()
        assert len(sid) == 8
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({obs_trace.new_trace_id() for _ in range(64)}) == 64


class TestHeaderCodec:
    def test_roundtrip(self):
        ctx = obs_trace.TraceContext(
            trace_id="ab" * 8, span_id="cd" * 4, t_ms=1754600000123
        )
        parsed = obs_trace.parse_header(ctx.header())
        assert parsed == ctx

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "justonepart",
            "two-parts",
            "a-b-c-d",           # too many parts
            "nothex!-cdcd-12",   # bad trace id
            "abab-nothex!-12",   # bad span id
            "abab-cdcd-later",   # non-integer time
            "abab-cdcd--5",      # four parts once split
            "-cdcd-12",          # empty trace id
        ],
    )
    def test_malformed_headers_parse_to_none(self, value):
        assert obs_trace.parse_header(value) is None

    def test_negative_time_rejected(self):
        # A '-' in the timestamp splits into four parts; build a direct
        # three-part value to hit the explicit sign check.
        assert obs_trace.parse_header("abab-cdcd-0") is not None


class TestSpanRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            obs_trace.SpanRecorder(capacity=0)

    def test_ring_is_bounded_and_evicts_oldest(self):
        rec = obs_trace.SpanRecorder(capacity=4)
        for n in range(10):
            rec.record(
                obs_trace.Span(
                    name=f"s{n}", trace_id="t", span_id=f"{n}",
                    start_s=float(n), duration_s=0.0,
                )
            )
        assert len(rec) == 4
        assert rec.dropped == 6
        names = [span.name for span in rec.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_seq_is_monotonic_and_survives_eviction(self):
        rec = obs_trace.SpanRecorder(capacity=3)
        seqs = [
            rec.record(
                obs_trace.Span(
                    name="s", trace_id="t", span_id="i",
                    start_s=0.0, duration_s=0.0,
                )
            )
            for _ in range(7)
        ]
        assert seqs == list(range(1, 8))
        assert rec.last_seq() == 7
        assert [span.seq for span in rec.spans()] == [5, 6, 7]

    def test_since_filters_incrementally(self):
        rec = obs_trace.SpanRecorder(capacity=16)
        for n in range(5):
            rec.record(
                obs_trace.Span(
                    name=f"s{n}", trace_id="t", span_id="i",
                    start_s=0.0, duration_s=0.0,
                )
            )
        assert [s.name for s in rec.spans(since=3)] == ["s3", "s4"]
        assert rec.spans(since=rec.last_seq()) == []


class TestRecordSpan:
    def test_disarmed_record_is_a_noop(self):
        obs_trace.clear_recorder()
        assert obs_trace.record_span("x", 0.0, 1.0) is None

    def test_armed_record_mints_missing_ids(self):
        rec = obs_trace.install_recorder(capacity=8)
        span = obs_trace.record_span("x", 10.0, 0.5, attrs={"k": 1})
        assert span is not None
        assert len(span.trace_id) == 16 and len(span.span_id) == 8
        assert span.pid > 0
        assert rec.spans()[0] is span

    def test_negative_duration_is_clamped(self):
        obs_trace.install_recorder(capacity=8)
        span = obs_trace.record_span("x", 10.0, -3.0)
        assert span.duration_s == 0.0

    def test_to_dict_omits_empty_parent_and_attrs(self):
        obs_trace.install_recorder(capacity=8)
        bare = obs_trace.record_span("x", 0.0, 0.0).to_dict()
        assert "parent_id" not in bare and "attrs" not in bare
        rich = obs_trace.record_span(
            "x", 0.0, 0.0, parent_id="p", attrs={"a": 1}
        ).to_dict()
        assert rich["parent_id"] == "p" and rich["attrs"] == {"a": 1}


class TestCurrentContext:
    def test_set_get_clear(self):
        assert obs_trace.get_current() is None
        obs_trace.set_current("t", "s")
        assert obs_trace.get_current() == ("t", "s")
        obs_trace.clear_current()
        assert obs_trace.get_current() is None

    def test_context_is_thread_local(self):
        obs_trace.set_current("main-trace", "main-span")
        seen = {}

        def worker():
            seen["before"] = obs_trace.get_current()
            obs_trace.set_current("worker-trace", "worker-span")
            seen["after"] = obs_trace.get_current()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["after"] == ("worker-trace", "worker-span")
        assert obs_trace.get_current() == ("main-trace", "main-span")
