"""Exporters: Perfetto-loadable trace JSON and Prometheus exposition."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs.export import chrome_trace, prometheus_text
from repro.obs.trace import Span
from repro.service.telemetry import HISTOGRAM_BOUNDS, Histogram

#: One Prometheus text-format sample line: name{labels} value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*="          # optional label set:
    r"\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9.+\-einfEINF]+$"              # value (int, float, +Inf)
)


def _span(name="unit.exec", **overrides) -> Span:
    base = dict(
        name=name, trace_id="t" * 16, span_id="s" * 8,
        start_s=100.0, duration_s=0.25, pid=42, tid=7,
    )
    base.update(overrides)
    return Span(**base)


class TestChromeTrace:
    def test_schema_shape(self):
        payload = chrome_trace(
            [_span(), _span("engine.chunk", parent_id="p" * 8,
                            attrs={"configs": 3})],
            last_seq=9, dropped=1,
        )
        assert set(payload) == {
            "traceEvents", "displayTimeUnit", "reproLastSeq", "reproDropped"
        }
        assert payload["displayTimeUnit"] == "ms"
        assert payload["reproLastSeq"] == 9
        assert payload["reproDropped"] == 1
        assert len(payload["traceEvents"]) == 2

    def test_events_are_complete_phase_microseconds(self):
        event = chrome_trace([_span()])["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert event["ts"] == pytest.approx(100.0 * 1e6)
        assert event["dur"] == pytest.approx(0.25 * 1e6)
        assert event["pid"] == 42 and event["tid"] == 7
        assert event["args"]["trace_id"] == "t" * 16

    def test_parent_and_attrs_ride_in_args(self):
        event = chrome_trace(
            [_span(parent_id="p" * 8, attrs={"job_id": "j-1"})]
        )["traceEvents"][0]
        assert event["args"]["parent_id"] == "p" * 8
        assert event["args"]["job_id"] == "j-1"

    def test_no_parent_key_when_root(self):
        event = chrome_trace([_span()])["traceEvents"][0]
        assert "parent_id" not in event["args"]

    def test_payload_is_json_serializable(self):
        text = json.dumps(chrome_trace([_span() for _ in range(5)]))
        assert json.loads(text)["traceEvents"]


def _metrics(**overrides) -> dict:
    hist = Histogram()
    hist.observe(0.03)
    hist.observe(0.03)
    hist.observe(7.5)
    hist.observe(1e9)  # lands in +Inf
    doc = {
        "uptime_s": 12.5,
        "counters": {"jobs_submitted": 3, "jobs_rejected": 0},
        "queue_depth": 2,
        "queue_depth_by_priority": {"0": 1, "5": 1},
        "pending_units": 4,
        "jobs_per_s": 0.24,
        "draining": False,
        "coalesce_rate": None,
        "histograms": {"unit_exec_s": hist.as_dict()},
    }
    doc.update(overrides)
    return doc


class TestPrometheusText:
    def test_every_sample_line_parses(self):
        text = prometheus_text(_metrics())
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"

    def test_counters_get_total_suffix_and_type(self):
        text = prometheus_text(_metrics())
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 3" in text

    def test_gauges_skip_missing_values(self):
        text = prometheus_text(_metrics())
        assert "repro_queue_depth 2" in text
        assert "repro_coalesce_rate" not in text  # None -> omitted

    def test_priority_labels(self):
        text = prometheus_text(_metrics())
        assert 'repro_queue_depth_by_priority{priority="0"} 1' in text
        assert 'repro_queue_depth_by_priority{priority="5"} 1' in text

    def test_histogram_buckets_are_cumulative_and_monotonic(self):
        text = prometheus_text(_metrics())
        buckets = []
        for line in text.splitlines():
            match = re.match(
                r'repro_unit_exec_seconds_bucket\{le="([^"]+)"\} (\d+)', line
            )
            if match:
                buckets.append((match.group(1), int(match.group(2))))
        assert len(buckets) == len(HISTOGRAM_BOUNDS) + 1
        assert buckets[-1][0] == "+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        # le="0.05" holds both 0.03 observations; +Inf holds all four.
        by_le = dict(buckets)
        assert by_le["0.05"] == 2
        assert by_le["+Inf"] == 4

    def test_histogram_count_matches_inf_bucket_and_sum_rendered(self):
        text = prometheus_text(_metrics())
        assert "repro_unit_exec_seconds_count 4" in text
        assert re.search(r"repro_unit_exec_seconds_sum [\d.e+]+", text)

    def test_bound_labels_are_compact(self):
        # %g formatting: 0.005 not 0.005000, 1 not 1.0.
        text = prometheus_text(_metrics())
        assert 'le="0.005"' in text
        assert 'le="1"' in text

    def test_malformed_histogram_payload_is_skipped(self):
        doc = _metrics()
        doc["histograms"]["unit_exec_s"]["counts"] = [1, 2, 3]  # wrong arity
        text = prometheus_text(doc)
        assert "repro_unit_exec_seconds_bucket" not in text

    def test_empty_document_renders(self):
        assert prometheus_text({}) == "\n"


class TestHistogramClass:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_boundary_value_lands_in_le_bucket(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.counts == [1, 0, 0]

    def test_weighted_observation(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.5, n=3)
        assert hist.counts == [0, 3, 0]
        assert hist.count == 3
        assert hist.sum == pytest.approx(1.5)

    def test_as_dict_shape(self):
        payload = Histogram().as_dict()
        assert len(payload["counts"]) == len(payload["bounds"]) + 1
        assert payload["count"] == 0
