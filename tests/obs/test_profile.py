"""The kernel phase profiler: attribution, arming discipline, identity."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.obs import profile as obs_profile
from repro.sim.config import SimulationConfig
from repro.sim.fastpath import execute_run_fast


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with the profiler off."""
    obs_profile.clear()
    yield
    obs_profile.clear()


def _config(n=2000):
    return SimulationConfig(
        benchmark="gcc", dcache="gated", icache="static", n_instructions=n
    )


class TestArming:
    def test_disarmed_by_default(self):
        assert obs_profile.active() is None
        assert obs_profile.snapshot() is None

    def test_install_returns_the_active_profile(self):
        profile = obs_profile.install()
        assert obs_profile.active() is profile
        obs_profile.clear()
        assert obs_profile.active() is None

    def test_env_var_arms_subprocesses(self):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        code = (
            "from repro.obs import profile; "
            "import sys; sys.exit(0 if profile.active() is not None else 1)"
        )
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        env[obs_profile.ENV_VAR] = "1"
        assert subprocess.run([sys.executable, "-c", code], env=env).returncode == 0
        env.pop(obs_profile.ENV_VAR)
        assert subprocess.run([sys.executable, "-c", code], env=env).returncode == 1


class TestAttribution:
    def test_all_phases_accumulate_during_a_run(self):
        obs_profile.install()
        execute_run_fast(_config())
        snap = obs_profile.snapshot(reset=True)
        assert snap["runs"] == 1
        for name in obs_profile.PHASES:
            entry = snap["phases"][name]
            assert entry["events"] > 0, f"phase {name} never fired"
            assert entry["seconds"] > 0.0, f"phase {name} accumulated no time"

    def test_snapshot_reset_zeroes_the_counters(self):
        obs_profile.install()
        execute_run_fast(_config())
        obs_profile.snapshot(reset=True)
        empty = obs_profile.snapshot(reset=False)
        assert empty["runs"] == 0
        assert all(
            entry["events"] == 0 for entry in empty["phases"].values()
        )

    def test_cache_depth_returns_to_zero(self):
        # L1 misses recurse into the L2 inside access(); the
        # outermost-only discipline must leave the depth balanced.
        profile = obs_profile.install()
        execute_run_fast(_config())
        assert profile.cache_depth == 0

    def test_merge_folds_worker_payloads(self):
        profile = obs_profile.install()
        execute_run_fast(_config())
        first = obs_profile.snapshot(reset=True)
        execute_run_fast(_config())
        profile.merge(first)
        merged = profile.as_dict()
        assert merged["runs"] == 2
        assert merged["phases"]["cache"]["events"] == (
            2 * first["phases"]["cache"]["events"]
        )


class TestZeroOverheadGuard:
    def test_armed_results_are_bit_identical_to_disarmed(self):
        disarmed = execute_run_fast(_config()).to_dict()
        obs_profile.install()
        armed = execute_run_fast(_config()).to_dict()
        assert armed == disarmed

    def test_disarmed_run_records_nothing(self):
        execute_run_fast(_config())
        assert obs_profile.snapshot() is None
