"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.cache.energy_accounting import EnergyLedger
from repro.circuits.cacti import CacheOrganization, cache_organization
from repro.circuits.technology import get_technology
from repro.sim import SimulationConfig, run_simulation


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the on-disk trace cache at a per-session scratch directory.

    Keeps the suite from reading (or polluting) the developer's real
    ``~/.cache/repro/traces``; the environment variable is set too so
    subprocess-spawning tests inherit the isolation.
    """
    from repro.sim import fastpath

    path = tmp_path_factory.mktemp("trace-cache")
    os.environ[fastpath._DISK_CACHE_ENV] = str(path)
    fastpath.set_trace_cache_dir(path)
    yield


@pytest.fixture(scope="session")
def tech70():
    """The 70nm technology node."""
    return get_technology(70)


@pytest.fixture(scope="session")
def tech180():
    """The 180nm technology node."""
    return get_technology(180)


@pytest.fixture(scope="session")
def l1_org() -> CacheOrganization:
    """The paper's base L1 organisation: 32KB, 2-way, 32B lines, 1KB subarrays."""
    return cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)


@pytest.fixture()
def ledger(l1_org) -> EnergyLedger:
    """A fresh energy ledger for the base L1 organisation."""
    return EnergyLedger(l1_org.subarray, l1_org.n_subarrays)


def make_attached(policy, org=None):
    """Attach a policy to an organisation with a fresh ledger; returns (policy, ledger)."""
    org = org or cache_organization(70, 32 * 1024, 32, 2, 1024, ports=2)
    ledger = EnergyLedger(org.subarray, org.n_subarrays)
    policy.attach(org, ledger)
    return policy, ledger


@pytest.fixture(scope="session")
def small_baseline_run():
    """A short static-pull-up run of gcc shared by integration-style tests."""
    config = SimulationConfig(
        benchmark="gcc",
        dcache_policy="static",
        icache_policy="static",
        feature_size_nm=70,
        n_instructions=6_000,
    )
    return run_simulation(config)


@pytest.fixture(scope="session")
def small_gated_run():
    """A short gated-precharging run of gcc shared by integration-style tests."""
    config = SimulationConfig(
        benchmark="gcc",
        dcache_policy="gated-predecode",
        icache_policy="gated",
        feature_size_nm=70,
        n_instructions=6_000,
    )
    return run_simulation(config)
