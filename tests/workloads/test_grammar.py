"""Unit tests for the scenario-algebra parser, unparser and analyser."""

from __future__ import annotations

import pytest

from repro.workloads.grammar import (
    DEFAULT_MIX_QUANTUM,
    DEFAULT_PHASE_QUANTUM,
    DEFAULT_SLAB_BITS,
    MAX_LEAVES,
    MAX_NESTING_DEPTH,
    Bench,
    Group,
    ScenarioError,
    analyse,
    iter_leaves,
    parse_scenario,
    unparse,
)


class TestParsing:
    def test_flat_mix(self):
        root = parse_scenario("mix:gcc+mcf")
        assert root == Group(
            family="mix",
            children=(Bench(name="gcc"), Bench(name="mcf")),
            quantum=DEFAULT_MIX_QUANTUM,
        )

    def test_flat_phases_with_quantum(self):
        root = parse_scenario("phases:gcc+art@300")
        assert root.family == "phases"
        assert root.quantum == 300

    def test_default_quanta_differ_by_family(self):
        assert parse_scenario("mix:gcc+mcf").quantum == DEFAULT_MIX_QUANTUM
        assert (
            parse_scenario("phases:gcc+mcf").quantum == DEFAULT_PHASE_QUANTUM
        )

    def test_nested_scenario_with_weight(self):
        root = parse_scenario("mix:(phases:gcc+mcf@5000)*2+vortex@800")
        inner, vortex = root.children
        assert isinstance(inner, Group)
        assert inner.family == "phases"
        assert inner.quantum == 5000
        assert inner.weight == 2
        assert vortex == Bench(name="vortex")
        assert root.quantum == 800

    def test_modifiers_parse_in_any_order(self):
        a = parse_scenario("mix:gcc~scale=0.5~slab=32*3+mcf")
        b = parse_scenario("mix:gcc*3~slab=32~scale=0.5+mcf")
        assert a == b
        assert a.children[0] == Bench(name="gcc", weight=3, scale=0.5, slab=32)

    def test_names_are_case_insensitive(self):
        assert parse_scenario("MIX:GCC+McF") == parse_scenario("mix:gcc+mcf")

    def test_whitespace_is_insignificant(self):
        assert parse_scenario("mix: gcc + mcf @ 500") == parse_scenario(
            "mix:gcc+mcf@500"
        )

    def test_non_scenario_names_return_none(self):
        assert parse_scenario("gcc") is None
        assert parse_scenario("trace:foo.trace.gz") is None
        assert parse_scenario("fuzz:3") is None


class TestErrors:
    @pytest.mark.parametrize(
        "name, fragment",
        [
            ("mix:gcc", "at least two"),
            ("phases:art", "at least two"),
            ("mix:gcc+mcf@soon", "quantum must be an integer"),
            ("mix:gcc+mcf@0", "quantum must be between"),
            ("mix:(gcc+mcf)", "unknown scenario family"),
            ("mix:(phases:gcc+mcf+vortex", "expected ')'"),
            ("mix:gcc*0+mcf", "weight must be between"),
            ("mix:gcc~scale=99+mcf", "scale must be between"),
            ("mix:gcc~slab=5+mcf", "slab must be between"),
            ("mix:gcc~speed=2+mcf", "unknown modifier"),
            ("mix:gcc*2*3+mcf", "duplicate weight"),
            ("mix:gcc~scale=1~scale=2+mcf", "duplicate scale"),
            ("mix:gcc+mcf)", "unexpected trailing text"),
            ("mix:+gcc", "expected a benchmark name"),
        ],
    )
    def test_malformed_names_raise_scenario_error(self, name, fragment):
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario(name)
        assert fragment in str(excinfo.value)

    def test_errors_carry_the_offending_position(self):
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario("mix:gcc+mcf@soon")
        error = excinfo.value
        assert error.text == "mix:gcc+mcf@soon"
        assert error.text[error.position :].startswith("soon")
        assert "position 12" in str(error)

    def test_scenario_error_is_a_value_error(self):
        # Every boundary (CLI exit 2, service 422, loadgen) catches
        # ValueError; the annotated error must flow through all of them.
        assert issubclass(ScenarioError, ValueError)

    def test_nesting_depth_is_bounded(self):
        name = "mix:gcc+mcf"
        for _ in range(MAX_NESTING_DEPTH):
            name = f"mix:({name})+gcc"
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario(name)
        assert "nest at most" in str(excinfo.value)

    def test_leaf_count_is_bounded(self):
        name = "mix:" + "+".join(["gcc"] * (MAX_LEAVES + 1))
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario(name)
        assert "too many benchmark leaves" in str(excinfo.value)


class TestUnparse:
    def test_canonical_form_is_explicit_and_lowercase(self):
        root = parse_scenario("MIX: GCC + McF")
        assert unparse(root) == "mix:gcc+mcf@2000"

    def test_defaults_are_omitted(self):
        root = parse_scenario("mix:gcc*1~scale=1.0+mcf")
        assert unparse(root) == "mix:gcc+mcf@2000"

    def test_modifier_order_is_normalised(self):
        root = parse_scenario("mix:gcc*3~slab=32~scale=0.5+mcf@100")
        assert unparse(root) == "mix:gcc~scale=0.5~slab=32*3+mcf@100"

    def test_nested_unparse_parenthesises(self):
        name = "mix:(phases:gcc+mcf@5000)*2+vortex@800"
        assert unparse(parse_scenario(name)) == name


class TestAnalyse:
    def test_flat_mix_programs(self):
        leaves, programs = analyse(parse_scenario("mix:gcc+mcf+art"))
        assert [leaf.seed_index for leaf in leaves] == [0, 1, 2]
        assert [leaf.program for leaf in leaves] == [(0,), (1,), (2,)]
        assert programs == [(0,), (1,), (2,)]

    def test_flat_phases_share_one_program(self):
        leaves, programs = analyse(parse_scenario("phases:gcc+mcf"))
        assert [leaf.program for leaf in leaves] == [(), ()]
        assert programs == [()]

    def test_phases_under_mix_are_one_program(self):
        leaves, programs = analyse(
            parse_scenario("mix:(phases:gcc+mcf@500)+vortex")
        )
        assert [leaf.program for leaf in leaves] == [(0,), (0,), (1,)]
        assert programs == [(0,), (1,)]

    def test_nested_mix_programs_are_distinct(self):
        leaves, programs = analyse(parse_scenario("mix:(mix:gcc+gcc@500)+gcc"))
        assert [leaf.program for leaf in leaves] == [(0, 0), (0, 1), (1,)]
        assert len(programs) == 3

    def test_scales_multiply_down_the_tree(self):
        leaves, _ = analyse(
            parse_scenario("mix:(mix:gcc~scale=0.5+mcf@100)~scale=0.5+art")
        )
        assert [leaf.scale for leaf in leaves] == [0.25, 0.5, 1.0]

    def test_innermost_slab_wins(self):
        leaves, _ = analyse(
            parse_scenario("mix:(mix:gcc~slab=24+mcf@100)~slab=32+art")
        )
        assert [leaf.slab for leaf in leaves] == [24, 32, DEFAULT_SLAB_BITS]

    def test_iter_leaves_matches_analyse_order(self):
        root = parse_scenario("mix:(phases:gcc+mcf@500)+vortex")
        leaves, _ = analyse(root)
        assert [leaf.bench for leaf in leaves] == list(iter_leaves(root))
