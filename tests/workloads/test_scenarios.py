"""Scenario workloads: multiprogrammed interleave and phase shifting."""

from __future__ import annotations

import itertools

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import execute_run
from repro.workloads.scenarios import (
    MultiprogrammedWorkload,
    PhaseShiftingWorkload,
    resolve_workload,
)
from repro.workloads.synthetic import make_workload


def _take(workload, count):
    return list(itertools.islice(workload.instructions(), count))


# ----------------------------------------------------------------------
# Name resolution
# ----------------------------------------------------------------------
def test_plain_names_do_not_resolve_as_scenarios() -> None:
    assert resolve_workload("gcc") is None


def test_mix_resolution_and_defaults() -> None:
    workload = resolve_workload("mix:gcc+mcf")
    assert isinstance(workload, MultiprogrammedWorkload)
    assert workload.names == ("gcc", "mcf")
    assert workload.quantum == 2000


def test_phases_resolution_with_quantum() -> None:
    workload = resolve_workload("phases:gcc+art@750")
    assert isinstance(workload, PhaseShiftingWorkload)
    assert workload.quantum == 750


@pytest.mark.parametrize(
    "bad",
    ["mix:gcc", "mix:gcc+mcf@soon", "phases:art"],
)
def test_malformed_scenarios_raise(bad: str) -> None:
    with pytest.raises(ValueError):
        resolve_workload(bad)


def test_unknown_child_benchmark_raises_key_error() -> None:
    with pytest.raises(KeyError):
        resolve_workload("mix:gcc+notabench")


def test_make_workload_dispatches_scenarios() -> None:
    assert isinstance(make_workload("mix:gcc+mcf@100"), MultiprogrammedWorkload)
    assert isinstance(make_workload("phases:gcc+art"), PhaseShiftingWorkload)


# ----------------------------------------------------------------------
# Stream semantics
# ----------------------------------------------------------------------
def test_mix_is_deterministic() -> None:
    a = _take(make_workload("mix:gcc+mcf@300", seed=6), 2000)
    b = _take(make_workload("mix:gcc+mcf@300", seed=6), 2000)
    assert a == b


def test_mix_programs_live_in_disjoint_address_spaces() -> None:
    quantum = 250
    workload = MultiprogrammedWorkload(["gcc", "mcf"], quantum=quantum)
    ops = _take(workload, 4 * quantum)
    slabs = {uop.pc >> 40 for uop in ops}
    assert slabs == {0, 1}
    for index, uop in enumerate(ops):
        expected_slab = (index // quantum) % 2
        assert uop.pc >> 40 == expected_slab
        if uop.address is not None:
            assert uop.address >> 40 == expected_slab


def test_mix_register_slices_are_disjoint() -> None:
    workload = MultiprogrammedWorkload(["gcc", "mcf"], quantum=100)
    ops = _take(workload, 400)
    for index, uop in enumerate(ops):
        program = (index // 100) % 2
        low, high = program * 32, program * 32 + 32
        for register in (uop.dest, uop.src1, uop.src2):
            if register is not None:
                assert low <= register < high


def test_mix_of_same_benchmark_decorrelates_instances() -> None:
    workload = MultiprogrammedWorkload(["gcc", "gcc"], quantum=100)
    ops = _take(workload, 200)
    first = [(u.op_type, u.pc & ((1 << 40) - 1)) for u in ops[:100]]
    second = [(u.op_type, u.pc & ((1 << 40) - 1)) for u in ops[100:]]
    assert first != second


def test_phases_alternate_between_profiles() -> None:
    quantum = 200
    workload = PhaseShiftingWorkload(["gcc", "art"], quantum=quantum)
    ops = _take(workload, 4 * quantum)
    gcc_ops = _take(make_workload("gcc", seed=1), quantum)
    assert ops[:quantum] == gcc_ops
    # The second quantum comes from the other profile, same address space.
    assert ops[quantum : 2 * quantum] != gcc_ops
    assert all(uop.pc >> 40 == 0 for uop in ops)


def test_scenarios_support_generate() -> None:
    # The engine-bypassing experiments (predecode, figure6) call
    # workload.generate(); scenario names must satisfy the same protocol.
    workload = make_workload("mix:gcc+mcf@100")
    ops = workload.generate(250)
    assert len(ops) == 250
    assert ops == _take(make_workload("mix:gcc+mcf@100"), 250)
    with pytest.raises(ValueError):
        workload.generate(-1)


def test_predecode_experiment_accepts_scenario_names() -> None:
    from repro.experiments.registry import ExperimentOptions, get_experiment
    from repro.sim.engine import SimEngine

    experiment = get_experiment("predecode")
    result = experiment.run(
        SimEngine(),
        ExperimentOptions(benchmarks=("mix:gcc+mcf@200",), n_instructions=600),
    )
    assert experiment.format(result)


def test_scenarios_simulate_end_to_end() -> None:
    for name in ("mix:gcc+mcf@200", "phases:gcc+art@200"):
        result = execute_run(
            SimulationConfig(benchmark=name, n_instructions=1000)
        )
        assert result.benchmark == name
        # Commit is width-wide, so the run can overshoot by < one group.
        assert result.pipeline.committed_instructions >= 1000
