"""Semantics of nested scenario expressions.

The flat ``mix:``/``phases:`` behaviours are pinned by
``test_scenarios.py``; these tests pin what nesting adds — seed
decorrelation by DFS leaf index, program-wise address slabs and register
slices, pressure-shaping modifiers — and that flat expressions evaluated
through the general :class:`ScenarioWorkload` machinery are bit-identical
to their dedicated classes.
"""

from __future__ import annotations

from itertools import islice

import pytest

from repro.workloads.grammar import parse_scenario
from repro.workloads.scenarios import (
    MultiprogrammedWorkload,
    ScenarioWorkload,
    resolve_workload,
    workload_identity,
)
from repro.workloads.synthetic import N_REGISTERS

_SLAB_BYTES = 1 << 40


def _prefix(workload, count=600):
    return list(islice(workload.instructions(), count))


class TestSeedDecorrelation:
    def test_nested_duplicate_benchmarks_get_three_distinct_streams(self):
        # The satellite regression: every gcc leaf of
        # mix:(mix:gcc+gcc)+gcc must be a *different* dynamic instance,
        # exactly as the flat mix decorrelates via seed + 101 * index.
        workload = resolve_workload("mix:(mix:gcc+gcc@200)+gcc@200", seed=1)
        ops = _prefix(workload, 1200)
        # Quantum 200 at both levels: the inner mix contributes ops
        # 0-199 (inner child 0) and 200-399 (inner child 1) of its
        # stream per outer turn; the outer gcc contributes 200-op turns.
        inner_first = [op.pc % _SLAB_BYTES for op in ops[:200]]
        inner_second = [op.pc % _SLAB_BYTES for op in ops[200:400]]
        outer = [op.pc % _SLAB_BYTES for op in ops[400:600]]
        assert inner_first != inner_second
        assert inner_first != outer
        assert inner_second != outer

    def test_nested_seed_indices_match_flat_equivalents(self):
        # A leaf's stream depends only on its DFS index, not on the
        # shape above it: leaf k of any expression equals child k of a
        # flat mix with the same seed (modulo address translation).
        nested = resolve_workload("mix:(mix:gcc+mcf@300)+art@300", seed=5)
        flat = resolve_workload("mix:gcc+mcf+art@300", seed=5)
        # Program count is 3 in both, so translation is identical too;
        # only the interleaving order differs.  Compare the first quantum
        # (pure leaf-0 output in both).
        assert _prefix(nested, 300) == _prefix(flat, 300)


class TestProgramAssignment:
    def test_phases_under_mix_share_one_slab(self):
        workload = resolve_workload("mix:(phases:gcc+mcf@100)+vortex@100")
        ops = _prefix(workload, 200)
        first_slabs = {op.pc // _SLAB_BYTES for op in ops[:100]}
        second_slabs = {op.pc // _SLAB_BYTES for op in ops[100:200]}
        assert first_slabs == {0}
        assert second_slabs == {1}

    def test_nested_mix_spreads_three_slabs(self):
        workload = resolve_workload("mix:(mix:gcc+gcc@100)+gcc@100")
        slabs = {op.pc // _SLAB_BYTES for op in _prefix(workload, 600)}
        assert slabs == {0, 1, 2}

    def test_register_file_is_partitioned_per_program(self):
        workload = resolve_workload("mix:(mix:gcc+gcc@100)+gcc@100")
        slice_width = N_REGISTERS // 3
        for op in _prefix(workload, 600):
            program = op.pc // _SLAB_BYTES
            base = program * slice_width
            for reg in (op.dest, op.src1, op.src2):
                if reg is not None:
                    assert base <= reg < base + slice_width


class TestModifiers:
    def test_weight_grants_consecutive_quanta(self):
        workload = resolve_workload("mix:gcc*2+mcf@100")
        ops = _prefix(workload, 400)
        slabs = [op.pc // _SLAB_BYTES for op in ops]
        assert slabs[:200] == [0] * 200
        assert slabs[200:300] == [1] * 100
        assert slabs[300:400] == [0] * 100

    def test_narrow_slab_folds_addresses(self):
        narrow = resolve_workload("mix:gcc~slab=24+mcf@100")
        for op in _prefix(narrow, 100):
            assert op.pc < (1 << 24)
            if op.address is not None:
                assert op.address < (1 << 24)

    def test_scale_shrinks_the_footprint(self):
        # Region bases are fixed, so the right signal is how many
        # distinct cache lines the packed working set touches.
        def lines(name):
            workload = resolve_workload(name)
            return {
                op.address >> 5
                for op in _prefix(workload, 5000)
                if op.address is not None
            }

        assert len(lines("mix:gcc~scale=0.125+mcf@5000")) < len(
            lines("mix:gcc+mcf@5000")
        )

    def test_modifiers_change_the_stream_deterministically(self):
        a = resolve_workload("mix:gcc~scale=0.5+mcf@200", seed=3)
        b = resolve_workload("mix:gcc~scale=0.5+mcf@200", seed=3)
        assert _prefix(a) == _prefix(b)


class TestFlatEquivalence:
    def test_flat_mix_resolves_to_compat_class(self):
        workload = resolve_workload("mix:gcc+mcf")
        assert isinstance(workload, MultiprogrammedWorkload)
        assert workload.names == ("gcc", "mcf")

    def test_general_evaluation_matches_compat_class(self):
        root = parse_scenario("mix:gcc+mcf@400")
        general = ScenarioWorkload(root, seed=2)
        compat = MultiprogrammedWorkload(["gcc", "mcf"], quantum=400, seed=2)
        assert _prefix(general, 1000) == _prefix(compat, 1000)

    def test_nested_workload_class(self):
        workload = resolve_workload("mix:(phases:gcc+mcf@500)+vortex")
        assert isinstance(workload, ScenarioWorkload)
        assert not isinstance(workload, MultiprogrammedWorkload)


class TestIdentity:
    def test_equivalent_spellings_share_identity(self):
        assert workload_identity("mix:gcc+mcf") == workload_identity(
            "MIX: GCC + MCF @ 2000"
        )

    def test_different_expressions_differ(self):
        assert workload_identity("mix:gcc+mcf") != workload_identity(
            "mix:gcc+mcf@100"
        )

    def test_fuzz_identity_matches_its_expansion(self):
        from repro.workloads.grammar import unparse

        expansion = unparse(resolve_workload("fuzz:7").root)
        assert workload_identity("fuzz:7") == ("scenario", expansion)
        assert workload_identity("fuzz:7") == workload_identity(expansion)

    def test_plain_and_malformed_names_have_no_identity(self):
        assert workload_identity("gcc") is None
        assert workload_identity("mix:gcc") is None

    def test_equivalent_spellings_share_cache_and_store_keys(self):
        # The documented promise: the engine memo key and the on-disk
        # store digest key scenarios by canonical form, so reordered
        # modifiers / implicit quanta / a fuzz: seed vs its expansion
        # all resolve to one entry.
        from repro.sim import SimulationConfig
        from repro.sim.store import ResultStore
        from repro.workloads.grammar import unparse

        def config(name):
            return SimulationConfig(benchmark=name, n_instructions=2000)

        a, b = config("mix:gcc+mcf@2000"), config("MIX: GCC *1 + McF")
        assert a.cache_key() == b.cache_key()
        assert ResultStore.key_for(a) == ResultStore.key_for(b)

        expansion = unparse(resolve_workload("fuzz:4").root)
        f, g = config("fuzz:4"), config(expansion)
        assert f.cache_key() == g.cache_key()
        assert ResultStore.key_for(f) == ResultStore.key_for(g)

        assert a.cache_key() != config("mix:gcc+mcf@100").cache_key()
