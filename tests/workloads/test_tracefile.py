"""Trace file format: streaming write/read, metadata, error handling."""

from __future__ import annotations

import gzip
import itertools

import pytest

from repro.workloads.synthetic import make_workload
from repro.workloads.trace import MicroOp, OP_ALU, OP_BRANCH, OP_LOAD
from repro.workloads.tracefile import (
    MAGIC,
    TraceFileWorkload,
    read_trace,
    read_trace_meta,
    record_benchmark,
    write_trace,
)


def test_round_trip_identity(tmp_path) -> None:
    path = tmp_path / "w.trace.gz"
    ops = list(itertools.islice(make_workload("gcc", seed=5).instructions(), 2000))
    assert write_trace(path, ops, meta={"benchmark": "gcc", "seed": 5}) == 2000
    assert list(read_trace(path)) == ops


def test_metadata_header(tmp_path) -> None:
    path = tmp_path / "w.trace.gz"
    write_trace(path, [], meta={"benchmark": "gcc", "note": "empty"})
    meta = read_trace_meta(path)
    assert meta == {"benchmark": "gcc", "note": "empty"}
    assert list(read_trace(path)) == []


def test_record_benchmark_matches_generator(tmp_path) -> None:
    path = tmp_path / "mcf.trace.gz"
    assert record_benchmark(path, "mcf", 500, seed=2) == 500
    expected = list(itertools.islice(make_workload("mcf", seed=2).instructions(), 500))
    assert list(read_trace(path)) == expected
    meta = read_trace_meta(path)
    assert meta["benchmark"] == "mcf"
    assert meta["seed"] == 2
    assert meta["count"] == 500


def test_record_from_short_finite_source_fails_cleanly(tmp_path) -> None:
    # Re-recording a 100-op trace while asking for 500 ops must raise a
    # clean ValueError (not PEP-479 RuntimeError) and leave no partial
    # file whose header count lies.
    short = tmp_path / "short.trace.gz"
    record_benchmark(short, "gcc", 100)
    target = tmp_path / "longer.trace.gz"
    with pytest.raises(ValueError, match="yielded only 100"):
        record_benchmark(target, f"trace:{short}", 500)
    assert not target.exists()


def test_optional_fields_survive(tmp_path) -> None:
    path = tmp_path / "ops.trace.gz"
    ops = [
        MicroOp(op_type=OP_ALU, pc=4, dest=0, src1=None, src2=None),
        MicroOp(op_type=OP_LOAD, pc=8, dest=3, src1=1, address=0x1234, base_address=0x1230),
        MicroOp(op_type=OP_BRANCH, pc=12, src1=2, taken=True, target=64),
        MicroOp(op_type=OP_BRANCH, pc=16, taken=False, target=None),
    ]
    write_trace(path, ops)
    assert list(read_trace(path)) == ops


def test_workload_wrapper_is_reusable(tmp_path) -> None:
    path = tmp_path / "gcc.trace.gz"
    record_benchmark(path, "gcc", 300)
    workload = TraceFileWorkload(path)
    assert workload.name == "gcc"
    first = list(workload.instructions())
    second = list(workload.instructions())
    assert first == second
    assert len(first) == 300


def test_trace_workload_generate(tmp_path) -> None:
    path = tmp_path / "gcc.trace.gz"
    record_benchmark(path, "gcc", 300)
    workload = TraceFileWorkload(path)
    assert workload.generate(200) == list(workload.instructions())[:200]
    with pytest.raises(ValueError, match="holds only 300"):
        workload.generate(301)


def test_missing_file_raises_value_error(tmp_path) -> None:
    with pytest.raises(ValueError, match="not found"):
        TraceFileWorkload(tmp_path / "nope.trace.gz")


def test_non_gzip_file_raises_value_error(tmp_path) -> None:
    path = tmp_path / "plain.trace.gz"
    path.write_text("just text, no gzip")
    with pytest.raises(ValueError, match="not a gzip file"):
        read_trace_meta(path)


def test_bad_magic_raises_value_error(tmp_path) -> None:
    path = tmp_path / "bad.trace.gz"
    with gzip.open(path, "wb") as handle:
        handle.write(b"something else entirely\n")
    with pytest.raises(ValueError, match="bad magic"):
        read_trace_meta(path)


def test_truncated_record_raises_value_error(tmp_path) -> None:
    path = tmp_path / "trunc.trace.gz"
    ops = [MicroOp(op_type=OP_ALU, pc=4, dest=1)]
    write_trace(path, ops, meta={})
    with gzip.open(path, "rb") as handle:
        payload = handle.read()
    with gzip.open(path, "wb") as handle:
        handle.write(payload[:-3])
    with pytest.raises(ValueError, match="truncated"):
        list(read_trace(path))


def test_truncated_gzip_stream_raises_value_error(tmp_path) -> None:
    # A recording killed mid-write leaves a gzip stream without its
    # end-of-stream marker; replay must not crash with a raw EOFError.
    path = tmp_path / "killed.trace.gz"
    record_benchmark(path, "gcc", 400)
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(ValueError):
        list(read_trace(path))


def test_directory_path_raises_value_error(tmp_path) -> None:
    with pytest.raises(ValueError, match="cannot open"):
        read_trace_meta(tmp_path)


def test_corrupt_metadata_raises_value_error(tmp_path) -> None:
    path = tmp_path / "meta.trace.gz"
    with gzip.open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(b"{not json\n")
    with pytest.raises(ValueError, match="corrupt trace metadata"):
        read_trace_meta(path)
