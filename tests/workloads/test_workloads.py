"""Tests for the synthetic workload generators."""

from collections import Counter

import pytest

from repro.workloads import (
    BENCHMARKS,
    CodeWalker,
    HotColdRegion,
    PointerChase,
    StridedStream,
    benchmark_names,
    get_benchmark,
    make_workload,
    olden_names,
    spec2000_names,
)
from repro.workloads.trace import EXECUTION_LATENCY, MicroOp, OP_LOAD, OP_TYPES
import random


class TestCharacteristics:
    def test_sixteen_benchmarks_defined(self):
        assert len(benchmark_names()) == 16
        assert len(spec2000_names()) == 10
        assert len(olden_names()) == 6

    def test_paper_benchmark_names_present(self):
        expected = {
            "ammp", "art", "bzip2", "equake", "gcc", "mcf", "mesa", "vortex",
            "vpr", "wupwise", "bh", "bisort", "em3d", "health", "treeadd", "tsp",
        }
        assert set(benchmark_names()) == expected

    def test_instruction_mix_fractions_are_sane(self):
        for bench in BENCHMARKS.values():
            assert 0 < bench.alu_fraction < 1
            assert 0 < bench.load_fraction < 0.5

    def test_high_miss_outliers_have_large_footprints(self):
        # ammp, art and health are the paper's three high-miss-rate outliers.
        for name in ("ammp", "art", "health"):
            assert get_benchmark(name).data_footprint_bytes >= 1024 * 1024

    def test_lookup_is_case_insensitive_and_validates(self):
        assert get_benchmark("GCC").name == "gcc"
        with pytest.raises(KeyError):
            get_benchmark("perlbench")


class TestGenerators:
    def test_strided_stream_wraps_within_region(self):
        stream = StridedStream(base=1000, size=64, stride=16)
        addresses = [stream.next_address() for _ in range(8)]
        assert addresses[:4] == [1000, 1016, 1032, 1048]
        assert addresses[4] == 1000
        assert all(1000 <= a < 1064 for a in addresses)

    def test_pointer_chase_stays_in_region(self):
        chase = PointerChase(base=0x1000, size=1024, rng=random.Random(0), granule=16)
        for _ in range(200):
            address = chase.next_address()
            assert 0x1000 <= address < 0x1000 + 1024
            assert address % 16 == 0

    def test_hot_cold_region_moves_with_phase(self):
        region = HotColdRegion(base=0, size=1024 * 1024, hot_fraction=0.1)
        start_before = region.hot_base
        region.move_phase(3, 4)
        assert region.hot_base != start_before
        assert region.hot_size == pytest.approx(0.1 * 1024 * 1024, rel=0.01)

    def test_code_walker_mostly_stays_in_hot_region(self):
        walker = CodeWalker(base=0x400000, size=64 * 1024, hot_fraction=0.2,
                            rng=random.Random(1))
        hot_start, hot_size = walker.region.hot_bounds()
        in_hot = 0
        total = 3000
        for _ in range(total):
            pc, _, _ = walker.next_pc()
            if hot_start <= pc < hot_start + hot_size + 64:
                in_hot += 1
        # Occasional excursions into cold code (rare functions) are expected,
        # but the walker must spend the clear majority of its time in the
        # hot loops.
        assert in_hot / total > 0.6

    def test_invalid_generator_parameters_rejected(self):
        with pytest.raises(ValueError):
            StridedStream(base=0, size=0, stride=4)
        with pytest.raises(ValueError):
            PointerChase(base=0, size=8, rng=random.Random(0), granule=16)
        with pytest.raises(ValueError):
            HotColdRegion(base=0, size=100, hot_fraction=0.0)


class TestSyntheticWorkload:
    def test_generation_is_deterministic_per_seed(self):
        a = make_workload("gcc", seed=3).generate(500)
        b = make_workload("gcc", seed=3).generate(500)
        c = make_workload("gcc", seed=4).generate(500)
        assert [(op.op_type, op.pc, op.address) for op in a] == [
            (op.op_type, op.pc, op.address) for op in b
        ]
        assert [(op.op_type, op.pc, op.address) for op in a] != [
            (op.op_type, op.pc, op.address) for op in c
        ]

    def test_op_types_are_valid_and_mix_roughly_matches(self):
        ops = make_workload("mesa").generate(8000)
        counts = Counter(op.op_type for op in ops)
        assert set(counts) <= set(OP_TYPES)
        load_fraction = counts["load"] / len(ops)
        target = get_benchmark("mesa").load_fraction
        assert abs(load_fraction - target) < 0.12

    def test_memory_ops_have_addresses_and_bases(self):
        ops = make_workload("health").generate(3000)
        for op in ops:
            if op.is_memory:
                assert op.address is not None and op.address >= 0
                assert op.base_address is not None
                assert op.base_address <= op.address
            else:
                assert op.address is None

    def test_same_pc_always_has_same_op_type(self):
        ops = make_workload("vortex").generate(10_000)
        types_by_pc = {}
        for op in ops:
            types_by_pc.setdefault(op.pc, set()).add(op.op_type)
        # Block-ending PCs are always branches; every other PC keeps one type.
        assert all(len(types) == 1 for types in types_by_pc.values())

    def test_branches_carry_targets(self):
        ops = make_workload("bzip2").generate(5000)
        for op in ops:
            if op.is_branch:
                assert op.target is not None

    def test_addresses_stay_within_footprint_or_stack(self):
        bench = get_benchmark("treeadd")
        ops = make_workload("treeadd").generate(5000)
        data_lo, data_hi = 0x1000_0000, 0x1000_0000 + bench.data_footprint_bytes
        for op in ops:
            if op.is_memory:
                in_heap = data_lo <= op.address < data_hi
                in_stack = op.address >= 0x7FFF_0000
                assert in_heap or in_stack

    def test_negative_generation_rejected(self):
        with pytest.raises(ValueError):
            make_workload("gcc").generate(-1)

    def test_execution_latencies_defined_for_all_types(self):
        assert set(EXECUTION_LATENCY) == set(OP_TYPES)

    def test_microop_properties(self):
        load = MicroOp(op_type=OP_LOAD, pc=0, address=0x10)
        assert load.is_memory and not load.is_branch
        assert load.execution_latency == EXECUTION_LATENCY[OP_LOAD]
