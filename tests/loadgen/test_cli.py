"""The ``repro loadgen`` CLI: flags, JSON shapes, exit-status gates."""

from __future__ import annotations

import json

import pytest

from repro.loadgen.cli import main
from repro.loadgen.replay import read_session


def run_main(capsys, *argv):
    status = main(list(argv))
    return status, capsys.readouterr().out


class TestSingleRun:
    def test_open_loop_json_report(self, live_server, capsys, tmp_path):
        output = tmp_path / "run.json"
        status, out = run_main(
            capsys, "--server", live_server.url, "--rate", "12",
            "--duration", "1.0", "--instructions", "1500", "--seed", "5",
            "--verify", "2", "--json", "--output", str(output),
        )
        assert status == 0
        payload = json.loads(out)
        assert payload["kind"] == "repro-loadgen/run"
        assert payload["mode"] == "open"
        assert payload["completed"] == payload["offered"] > 0
        assert payload["identity"] == {"checked": 2, "ok": True}
        assert json.loads(output.read_text()) == payload

    def test_closed_loop_mode(self, live_server, capsys):
        status, out = run_main(
            capsys, "--server", live_server.url, "--mode", "closed",
            "--clients", "2", "--duration", "0.6", "--instructions", "1500",
            "--verify", "0", "--json",
        )
        assert status == 0
        payload = json.loads(out)
        assert payload["mode"] == "closed"
        assert payload["identity"] == {"checked": 0, "ok": None}

    def test_record_then_replay_round_trip(self, live_server, capsys, tmp_path):
        session = tmp_path / "session.jsonl"
        status, _ = run_main(
            capsys, "--server", live_server.url, "--rate", "10",
            "--duration", "1.0", "--instructions", "1500",
            "--record", str(session), "--verify", "0", "--json",
        )
        assert status == 0
        recorded = len(read_session(session))
        status, out = run_main(
            capsys, "--server", live_server.url, "--replay", str(session),
            "--speed", "4", "--duration", "10", "--verify", "1", "--json",
        )
        assert status == 0
        payload = json.loads(out)
        assert payload["offered"] == recorded
        assert payload["identity"]["ok"] is True


class TestSweep:
    def test_sweep_emits_one_point_per_rate(self, live_server, capsys):
        status, out = run_main(
            capsys, "--server", live_server.url, "--sweep", "4,8,16,24",
            "--duration", "0.6", "--instructions", "1500", "--verify", "1",
            "--json",
        )
        assert status == 0
        payload = json.loads(out)
        assert payload["kind"] == "repro-loadgen/sweep"
        assert len(payload["points"]) == 4
        assert all(p["identity"]["ok"] for p in payload["points"])

    def test_sweep_needs_two_rates(self, live_server, capsys):
        status, out = run_main(
            capsys, "--server", live_server.url, "--sweep", "10",
            "--duration", "0.5",
        )
        assert status == 2
        assert "at least two" in out


class TestGates:
    def test_min_achieved_ratio_gate_trips_exit_4(self, live_server, capsys):
        # A ratio above 1.0 is unattainable by construction, so the
        # gate must trip regardless of how the service performs.
        status, out = run_main(
            capsys, "--server", live_server.url, "--rate", "8",
            "--duration", "0.6", "--instructions", "1500", "--verify", "0",
            "--min-achieved-ratio", "1.1",
        )
        assert status == 4
        assert "min-achieved-ratio" in out

    @pytest.mark.parametrize("argv", [
        ("--rate", "10"),                       # no --server
        ("--server", "http://x", "--duration", "0"),
        ("--server", "http://x", "--clients", "0"),
        ("--server", "http://x", "--rate", "bogus"),
        ("--record-from-journal", "x.wal"),     # no --record
    ])
    def test_bad_usage_exits_2(self, capsys, argv):
        status, _ = run_main(capsys, *argv)
        assert status == 2


class TestJournalConversion:
    def test_record_from_journal_needs_no_server(self, capsys, tmp_path):
        from repro.service.jobs import parse_job_payload
        from repro.service.journal import JobJournal
        from repro.sim.config import SimulationConfig

        wal = tmp_path / "jobs.wal"
        journal = JobJournal(wal)
        config = SimulationConfig(
            benchmark="gcc", dcache="gated", icache="gated",
            n_instructions=1500,
        )
        journal.record_submit(
            parse_job_payload({"kind": "run", "config": config.to_dict()})
        )
        journal.close()
        session = tmp_path / "session.jsonl"
        status, out = run_main(
            capsys, "--record-from-journal", str(wal), "--record", str(session),
        )
        assert status == 0
        assert "recorded 1 request" in out
        assert len(read_session(session)) == 1
