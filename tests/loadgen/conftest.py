"""Shared fixtures for the loadgen suite: one live server, small jobs."""

from __future__ import annotations

import pytest

from repro.service.server import ServiceServer
from repro.sim.engine import SimEngine

#: Small enough that a unit executes in a few ms on the fast path.
INSTRUCTIONS = 1500


@pytest.fixture(scope="module")
def live_server():
    """One in-process server over real HTTP, shared per test module."""
    server = ServiceServer(engine=SimEngine(fast=True)).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def local_engine():
    """A local engine for byte-identity verification (LRU shared)."""
    engine = SimEngine(fast=True)
    yield engine
    engine.close()
