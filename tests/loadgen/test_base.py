"""Rate schedules and arrival processes: parsing, shape, determinism."""

from __future__ import annotations

import pytest

from repro.loadgen.base import (
    ConstantRate,
    DeterministicArrivals,
    DiurnalRate,
    PhasedRate,
    PoissonArrivals,
    Request,
    parse_rate_schedule,
    take_requests,
)


class TestParseRateSchedule:
    def test_plain_number_is_constant(self):
        schedule = parse_rate_schedule("25")
        assert isinstance(schedule, ConstantRate)
        assert schedule.rate(0.0) == schedule.rate(99.0) == 25.0
        assert schedule.mean_rate(10.0) == pytest.approx(25.0)

    def test_phases_cycle_through_their_rates(self):
        schedule = parse_rate_schedule("phases:10+80@5")
        assert isinstance(schedule, PhasedRate)
        assert schedule.rate(0.0) == 10.0
        assert schedule.rate(6.0) == 80.0
        assert schedule.rate(11.0) == 10.0  # cycles
        assert schedule.max_rate() == 80.0
        assert schedule.mean_rate(10.0) == pytest.approx(45.0)

    def test_diurnal_wave_spans_low_to_high(self):
        schedule = parse_rate_schedule("diurnal:5+40@60")
        assert isinstance(schedule, DiurnalRate)
        assert schedule.rate(0.0) == pytest.approx(5.0)
        assert schedule.rate(30.0) == pytest.approx(40.0)  # peak at half period
        assert schedule.rate(60.0) == pytest.approx(5.0)
        assert schedule.max_rate() == 40.0

    @pytest.mark.parametrize("spec", [
        "", "fast", "-3", "0", "phases:10", "phases:10+x@5",
        "diurnal:5@60", "diurnal:5+40+90@60", "sine:1+2@3",
    ])
    def test_malformed_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_rate_schedule(spec)


class TestArrivals:
    def test_poisson_is_reproducible_for_a_seed(self):
        schedule = parse_rate_schedule("20")
        first = list(PoissonArrivals(schedule, seed=7).arrivals(5.0))
        second = list(PoissonArrivals(schedule, seed=7).arrivals(5.0))
        assert first == second
        assert list(PoissonArrivals(schedule, seed=8).arrivals(5.0)) != first

    def test_poisson_rate_is_roughly_honoured(self):
        arrivals = list(PoissonArrivals(parse_rate_schedule("50"), seed=1).arrivals(20.0))
        # 1000 expected; 5 sigma is ~160.
        assert 800 <= len(arrivals) <= 1200
        assert all(0.0 <= t < 20.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_poisson_thinning_follows_a_phased_schedule(self):
        schedule = parse_rate_schedule("phases:5+50@5")
        arrivals = list(PoissonArrivals(schedule, seed=3).arrivals(10.0))
        slow = sum(1 for t in arrivals if t < 5.0)
        fast = sum(1 for t in arrivals if t >= 5.0)
        # The burst phase is 10x the quiet phase.
        assert fast > 4 * max(slow, 1)

    def test_deterministic_paces_at_the_instantaneous_rate(self):
        arrivals = list(DeterministicArrivals(parse_rate_schedule("10")).arrivals(2.0))
        assert len(arrivals) == 19  # 0.1, 0.2, ... 1.9
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)


class TestTakeRequests:
    def test_cuts_an_infinite_stream_at_the_horizon(self):
        class Infinite:
            def requests(self):
                t = 0.0
                while True:
                    yield Request(at_s=t, payload={"n": t})
                    t += 0.25

            def describe(self):
                return "infinite"

        taken = take_requests(Infinite(), 1.0)
        assert [r.at_s for r in taken] == [0.0, 0.25, 0.5, 0.75]
