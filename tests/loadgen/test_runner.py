"""The drivers against a live server: open loop, closed loop, replay, sweep."""

from __future__ import annotations

import pytest

from repro.loadgen.base import (
    DeterministicArrivals,
    PoissonArrivals,
    parse_rate_schedule,
    take_requests,
)
from repro.loadgen.replay import ReplayEngine, write_session
from repro.loadgen.report import bench_loadgen_section, format_curve, format_report
from repro.loadgen.runner import LoadRunner, saturation_sweep
from repro.loadgen.synthetic import MixEngine, parse_mix

#: Mirrors conftest.INSTRUCTIONS (kept literal: no package-relative
#: imports under pytest's importlib mode).
INSTRUCTIONS = 1500

MIX = "gcc/gated,art/gated:threshold=200"


def _engine(seed=3, rate="12"):
    return MixEngine(
        parse_mix(MIX, instructions=INSTRUCTIONS),
        PoissonArrivals(parse_rate_schedule(rate), seed=seed),
        seed=seed,
    )


class TestOpenLoop:
    def test_drives_the_stream_and_verifies_identity(self, live_server, local_engine):
        runner = LoadRunner(live_server.url)
        report = runner.open_loop(_engine(), 1.2)
        runner.verify(report, sample=2, engine=local_engine)
        assert report.offered > 0
        assert report.completed == report.offered
        assert report.failed == 0
        assert report.identity_checked == 2
        assert report.identity_ok is True
        row = report.to_dict()
        assert row["achieved_ratio"] == 1.0
        assert row["latency_s"]["p50"] is not None
        assert row["metrics_delta"]["jobs_submitted"] == report.offered

    def test_lateness_is_tracked_per_request(self, live_server):
        runner = LoadRunner(live_server.url)
        report = runner.open_loop(_engine(seed=9), 1.0)
        assert len(report.lateness_s) == report.offered
        assert all(lateness >= 0.0 for lateness in report.lateness_s)

    def test_deterministic_arrivals_offer_the_exact_count(self, live_server):
        # Rate 8 gives a binary-exact 0.125s gap, so the count is exact.
        engine = MixEngine(
            parse_mix(MIX, instructions=INSTRUCTIONS),
            DeterministicArrivals(parse_rate_schedule("8")),
            seed=1,
        )
        report = LoadRunner(live_server.url).open_loop(engine, 1.0)
        assert report.offered == 7  # 0.125s grid over (0, 1.0)


class TestClosedLoop:
    def test_n_clients_self_throttle_for_the_whole_duration(self, live_server):
        runner = LoadRunner(live_server.url)
        report = runner.closed_loop(_engine(seed=5), clients=3, duration=0.8)
        assert report.mode == "closed"
        assert report.offered > 3
        assert report.completed == report.offered
        # The loop offers for the full window even on a cache-hot server.
        assert report.wall_s >= 0.8

    def test_think_time_reduces_offered_load(self, live_server):
        runner = LoadRunner(live_server.url)
        eager = runner.closed_loop(_engine(seed=6), clients=2, duration=0.6)
        thinking = runner.closed_loop(
            _engine(seed=6), clients=2, duration=0.6, think_s=0.2
        )
        assert thinking.offered < eager.offered


class TestReplayDriving:
    def test_replayed_session_drives_and_verifies(self, live_server, local_engine,
                                                  tmp_path):
        path = tmp_path / "session.jsonl"
        write_session(path, take_requests(_engine(seed=7), 1.0))
        runner = LoadRunner(live_server.url)
        report = runner.open_loop(ReplayEngine(path, speed=4.0), duration=10.0)
        runner.verify(report, sample=1, engine=local_engine)
        assert report.offered == len(ReplayEngine(path))
        assert report.completed == report.offered
        assert report.identity_ok is True
        assert "replay" in report.generator


class TestSaturationSweep:
    def test_curve_has_a_point_per_rate_with_identity(self, live_server,
                                                      local_engine):
        runner = LoadRunner(live_server.url)
        reports = saturation_sweep(
            runner,
            lambda rate: _engine(seed=2, rate=str(rate)),
            rates=(4.0, 8.0, 16.0, 24.0),
            duration=0.8,
            verify_sample=1,
            engine=local_engine,
        )
        assert len(reports) == 4
        assert [r.mode for r in reports] == ["open"] * 4
        assert all(r.identity_ok is True for r in reports)
        offered = [r.offered_rate for r in reports]
        assert offered == sorted(offered)
        # The sweep drops raw outcomes; the curve keeps reduced rows.
        assert all(r.outcomes == [] for r in reports)
        table = format_curve(reports)
        assert table.count("\n") == 4  # header + one row per point

    def test_bench_section_shape(self):
        section = bench_loadgen_section(
            INSTRUCTIONS, rates=(3.0, 6.0), duration=0.6, verify_sample=1,
            echo=lambda line: None,
        )
        assert section["arrivals"] == "poisson"
        assert len(section["points"]) == 2
        assert section["identical"] is True
        assert section["peak_achieved_per_s"] > 0


class TestReportFormatting:
    def test_format_report_mentions_identity_verdict(self, live_server,
                                                     local_engine):
        runner = LoadRunner(live_server.url)
        report = runner.open_loop(_engine(seed=8), 0.6)
        runner.verify(report, sample=1, engine=local_engine)
        text = format_report(report)
        assert "offered" in text and "byte-identical" in text
