"""Mix parsing, weighted draws, and the seed-reproducibility contract."""

from __future__ import annotations

import pytest

from repro.loadgen.base import PoissonArrivals, parse_rate_schedule, take_requests
from repro.loadgen.synthetic import MixEngine, parse_mix


class TestParseMix:
    def test_runs_sweeps_and_weights(self):
        mix = parse_mix("gcc/gated*3, art/gated:threshold=200, gcc+art/gated")
        kinds = [entry.kind for entry in mix.entries]
        weights = [entry.weight for entry in mix.entries]
        assert kinds == ["run", "run", "sweep"]
        assert weights == [3, 1, 1]
        assert mix.entries[2].benchmarks == ("gcc", "art")

    def test_payloads_are_valid_submission_bodies(self):
        mix = parse_mix("gcc/gated,gcc+art/gated", instructions=2000)
        run, sweep = (entry.payload() for entry in mix.entries)
        assert run["kind"] == "run"
        assert run["config"]["n_instructions"] == 2000
        assert sweep["kind"] == "sweep"
        assert sweep["benchmarks"] == ["gcc", "art"]

    def test_unknown_benchmark_fails_at_parse_time(self):
        with pytest.raises(ValueError, match="nosuchbench"):
            parse_mix("nosuchbench/gated")

    def test_unknown_policy_fails_at_parse_time(self):
        with pytest.raises(ValueError, match="nosuchpolicy"):
            parse_mix("gcc/nosuchpolicy")

    @pytest.mark.parametrize("spec", ["", "gcc/gated*x", "gcc/gated*0", "/gated"])
    def test_malformed_entries_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_mix(spec)

    def test_unique_configs_deduplicate_across_entries(self):
        mix = parse_mix("gcc/gated,gcc/gated*5,art/gated")
        names = sorted(c.benchmark for c in mix.unique_configs())
        assert names == ["art", "gcc"]

    def test_parenthesised_scenario_entries(self):
        # Scenario expressions contain +/*// themselves, so the mix
        # language takes them parenthesised; splitting is depth-aware.
        mix = parse_mix(
            "(mix:gcc+art@500)/gated*2, gcc+(phases:art+mcf)/gated,"
            " (fuzz:3/2)/gated"
        )
        assert [entry.kind for entry in mix.entries] == ["run", "sweep", "run"]
        assert mix.entries[0].benchmarks == ("mix:gcc+art@500",)
        assert mix.entries[0].weight == 2
        assert mix.entries[1].benchmarks == ("gcc", "phases:art+mcf")
        assert mix.entries[2].benchmarks == ("fuzz:3/2",)

    def test_unbalanced_parentheses_fail_at_parse_time(self):
        with pytest.raises(ValueError, match="unbalanced"):
            parse_mix("(mix:gcc+art@500/gated")
        with pytest.raises(ValueError, match="unbalanced"):
            parse_mix("mix:gcc+art@500)/gated")

    def test_malformed_scenario_entry_carries_the_position(self):
        with pytest.raises(ValueError, match="at position"):
            parse_mix("(mix:gcc+art@soon)/gated")

    def test_scenario_entry_with_unknown_benchmark_fails(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            parse_mix("(mix:gcc+nosuch@100)/gated")


class TestReproducibility:
    MIX = "gcc/gated,art/gated:threshold=200*2,gcc+art/gated"

    def _stream(self, seed, mix_spec=MIX, rate="30"):
        engine = MixEngine(
            parse_mix(mix_spec),
            PoissonArrivals(parse_rate_schedule(rate), seed=seed),
            seed=seed,
        )
        return take_requests(engine, 3.0)

    def test_identical_seed_and_mix_give_the_identical_stream(self):
        # The acceptance contract: times, payloads and tags all match.
        assert self._stream(11) == self._stream(11)

    def test_different_seed_changes_the_stream(self):
        assert self._stream(11) != self._stream(12)

    def test_weights_bias_the_draw(self):
        engine = MixEngine(
            parse_mix("gcc/gated*9,art/gated"),
            PoissonArrivals(parse_rate_schedule("100"), seed=2),
            seed=2,
        )
        requests = take_requests(engine, 5.0)
        gcc = sum(1 for r in requests if "gcc" in r.tag)
        art = len(requests) - gcc
        assert gcc > 5 * max(art, 1)

    def test_arrival_times_are_decorrelated_from_the_mix(self):
        # Same seed, different mixes: the arrival pattern is unchanged,
        # only the payload draws differ.
        a = self._stream(4, mix_spec="gcc/gated,art/gated")
        b = self._stream(4, mix_spec="equake/gated:threshold=150")
        assert [r.at_s for r in a] == [r.at_s for r in b]
