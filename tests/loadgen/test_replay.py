"""Session files: round-trips, speed, and the journal-derived recorder."""

from __future__ import annotations

import json
import time

import pytest

from repro.loadgen.base import PoissonArrivals, parse_rate_schedule, take_requests
from repro.loadgen.replay import (
    ReplayEngine,
    read_session,
    record_from_journal,
    write_session,
)
from repro.loadgen.synthetic import MixEngine, parse_mix
from repro.service.jobs import parse_job_payload
from repro.service.journal import JobJournal
from repro.sim.config import SimulationConfig


def _synthetic_requests(duration=2.0, seed=5):
    engine = MixEngine(
        parse_mix("gcc/gated,art/gated", instructions=1500),
        PoissonArrivals(parse_rate_schedule("15"), seed=seed),
        seed=seed,
    )
    return take_requests(engine, duration)


class TestSessionFiles:
    def test_round_trip_preserves_payloads_and_gaps(self, tmp_path):
        requests = _synthetic_requests()
        path = tmp_path / "session.jsonl"
        assert write_session(path, requests, source="test") == len(requests)
        loaded = read_session(path)
        assert len(loaded) == len(requests)
        assert [r.payload for r in loaded] == [r.payload for r in requests]
        # Offsets are re-based to the first request but keep their gaps.
        gaps = [b.at_s - a.at_s for a, b in zip(requests, requests[1:])]
        loaded_gaps = [b.at_s - a.at_s for a, b in zip(loaded, loaded[1:])]
        assert loaded_gaps == pytest.approx(gaps, abs=1e-5)
        assert loaded[0].at_s == 0.0

    def test_read_session_strips_client_pinned_ids(self, tmp_path):
        path = tmp_path / "session.jsonl"
        path.write_text(
            json.dumps({"v": 1, "kind": "repro-loadgen/session"}) + "\n"
            + json.dumps({"at_s": 0.0, "payload": {"kind": "run", "id": "x",
                                                   "config": {}}}) + "\n"
        )
        (request,) = read_session(path)
        assert "id" not in request.payload

    def test_rejects_files_without_the_session_header(self, tmp_path):
        path = tmp_path / "notasession.jsonl"
        path.write_text('{"at_s": 0.0, "payload": {}}\n')
        with pytest.raises(ValueError, match="session"):
            read_session(path)

    def test_rejects_malformed_lines_with_their_line_number(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"v": 1, "kind": "repro-loadgen/session"}) + "\n"
            + '{"at_s": "not-a-float-or-missing-payload"}\n'
        )
        with pytest.raises(ValueError, match=":2"):
            read_session(path)

    def test_missing_file_is_a_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            read_session(tmp_path / "absent.jsonl")


class TestReplayEngine:
    def test_speed_multiplier_scales_every_offset(self, tmp_path):
        requests = _synthetic_requests()
        path = tmp_path / "session.jsonl"
        write_session(path, requests)
        normal = list(ReplayEngine(path, speed=1.0).requests())
        double = list(ReplayEngine(path, speed=2.0).requests())
        assert [r.at_s for r in double] == pytest.approx(
            [r.at_s / 2 for r in normal]
        )
        assert [r.payload for r in double] == [r.payload for r in normal]

    def test_bad_speed_rejected(self, tmp_path):
        path = tmp_path / "session.jsonl"
        write_session(path, _synthetic_requests())
        with pytest.raises(ValueError, match="speed"):
            ReplayEngine(path, speed=0.0)


class TestJournalRecorder:
    def _journal_with_submits(self, tmp_path, gap_s=0.04):
        path = tmp_path / "jobs.wal"
        journal = JobJournal(path)
        for benchmark in ("gcc", "art"):
            config = SimulationConfig(
                benchmark=benchmark, dcache="gated", icache="gated",
                n_instructions=1500,
            )
            journal.record_submit(
                parse_job_payload({"kind": "run", "config": config.to_dict()})
            )
            time.sleep(gap_s)
        # A sweep job, to prove the recorder re-folds expanded configs.
        config = SimulationConfig(
            benchmark="gcc", dcache="gated", icache="gated",
            n_instructions=1500,
        )
        journal.record_submit(parse_job_payload({
            "kind": "sweep", "config": config.to_dict(),
            "benchmarks": ["gcc", "art"],
        }))
        journal.close()
        return path

    def test_recorder_preserves_gaps_and_refolds_sweeps(self, tmp_path):
        wal = self._journal_with_submits(tmp_path)
        out = tmp_path / "session.jsonl"
        assert record_from_journal(wal, out) == 3
        requests = read_session(out)
        assert requests[0].at_s == 0.0
        # The wall-clock gap between submits survives the round trip.
        assert requests[1].at_s >= 0.02
        assert requests[2].payload["kind"] == "sweep"
        assert requests[2].payload["benchmarks"] == ["gcc", "art"]
        # Every rebuilt payload is a valid submission body.
        for request in requests:
            parse_job_payload(request.payload)

    def test_submits_without_timestamps_use_the_default_gap(self, tmp_path):
        wal = tmp_path / "old.wal"
        config = SimulationConfig(
            benchmark="gcc", dcache="gated", icache="gated",
            n_instructions=1500,
        )
        job = parse_job_payload({"kind": "run", "config": config.to_dict()})
        # A journal written before submit events carried timestamps.
        line = json.dumps({"v": 1, "event": "submit", "job": job.to_dict()})
        wal.write_text(line + "\n" + line.replace(job.id, job.id + "b") + "\n")
        out = tmp_path / "session.jsonl"
        assert record_from_journal(wal, out, default_gap_s=0.5) == 2
        requests = read_session(out)
        assert requests[1].at_s == pytest.approx(0.5)

    def test_journal_without_submits_is_a_value_error(self, tmp_path):
        wal = tmp_path / "empty.wal"
        wal.write_text('{"v": 1, "event": "done", "id": "j1"}\n')
        with pytest.raises(ValueError, match="no submit events"):
            record_from_journal(wal, tmp_path / "out.jsonl")
