"""Tests for the resizable-cache baseline and threshold selection."""

import pytest

from repro.core import ResizableCachePolicy
from repro.core.threshold import (
    CANDIDATE_THRESHOLDS,
    ThresholdProfile,
    select_threshold,
)

from tests.conftest import make_attached


class TestResizableCache:
    def test_starts_at_full_size(self):
        policy, _ = make_attached(ResizableCachePolicy(interval_accesses=100))
        assert policy.active_subarrays == policy.organization.n_subarrays

    def test_accesses_never_delayed(self):
        policy, _ = make_attached(ResizableCachePolicy(interval_accesses=100))
        for cycle in range(0, 5000, 10):
            assert policy.access(0, cycle) == 0
        assert policy.stats.delayed_accesses == 0

    def test_downsizes_when_miss_ratio_stays_low(self):
        policy, _ = make_attached(ResizableCachePolicy(interval_accesses=50))
        cycle = 0
        for _ in range(200):
            policy.access(0, cycle)
            policy.note_outcome(hit=True, cycle=cycle)
            cycle += 10
        assert policy.active_subarrays < policy.organization.n_subarrays
        assert policy.resize_events >= 1

    def test_upsizes_when_misses_exceed_slack(self):
        policy, _ = make_attached(
            ResizableCachePolicy(interval_accesses=50, miss_ratio_slack=0.01)
        )
        cycle = 0
        # First interval: perfect hits at full size (establishes the reference),
        # and lets the cache shrink.
        for _ in range(120):
            policy.access(0, cycle)
            policy.note_outcome(hit=True, cycle=cycle)
            cycle += 10
        shrunk = policy.active_subarrays
        # Now misses spike: the policy must grow back.
        for _ in range(120):
            policy.access(0, cycle)
            policy.note_outcome(hit=False, cycle=cycle)
            cycle += 10
        assert policy.active_subarrays > shrunk

    def test_never_shrinks_below_minimum(self):
        policy, _ = make_attached(
            ResizableCachePolicy(interval_accesses=20, min_active_fraction=0.25)
        )
        cycle = 0
        for _ in range(2000):
            policy.access(0, cycle)
            policy.note_outcome(hit=True, cycle=cycle)
            cycle += 5
        assert policy.active_subarrays >= policy.organization.n_subarrays // 4

    def test_remap_set_restricts_index_range(self):
        policy, _ = make_attached(ResizableCachePolicy(interval_accesses=20))
        n_sets = 512
        cycle = 0
        for _ in range(200):
            policy.access(0, cycle)
            policy.note_outcome(hit=True, cycle=cycle)
            cycle += 5
        active_sets = n_sets * policy.active_subarrays // policy.organization.n_subarrays
        for set_index in (0, 100, 511):
            assert policy.remap_set(set_index, n_sets) < active_sets

    def test_inactive_subarrays_are_isolated_in_energy_accounting(self):
        policy, ledger = make_attached(ResizableCachePolicy(interval_accesses=20))
        cycle = 0
        for _ in range(400):
            policy.access(0, cycle)
            policy.note_outcome(hit=True, cycle=cycle)
            cycle += 5
        policy.finalize(cycle)
        breakdown = ledger.breakdown(cycle)
        assert breakdown.precharged_fraction < 1.0
        assert breakdown.relative_discharge < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResizableCachePolicy(interval_accesses=0)
        with pytest.raises(ValueError):
            ResizableCachePolicy(min_active_fraction=0.0)
        with pytest.raises(ValueError):
            ResizableCachePolicy(miss_ratio_slack=-0.1)


class TestThresholdSelection:
    def _profile(self, gaps, total_cycles=100_000, **kwargs):
        return ThresholdProfile(gaps=gaps, total_cycles=total_cycles, **kwargs)

    def test_counts_delayed_accesses(self):
        profile = self._profile([5, 50, 500, 5000])
        assert profile.delayed_accesses(100) == 2
        assert profile.delayed_accesses(10_000) == 0

    def test_estimated_slowdown_scales_with_penalty(self):
        profile_cheap = self._profile([500] * 100, penalty_cycles=1)
        profile_costly = self._profile([500] * 100, penalty_cycles=1, replay_factor=3.0)
        assert profile_costly.estimated_slowdown(100) == pytest.approx(
            3 * profile_cheap.estimated_slowdown(100)
        )

    def test_predecode_coverage_reduces_estimate(self):
        bare = self._profile([500] * 100)
        covered = self._profile([500] * 100, predecode_coverage=0.8)
        assert covered.estimated_slowdown(100) == pytest.approx(
            0.2 * bare.estimated_slowdown(100)
        )

    def test_select_most_aggressive_within_budget(self):
        # 30k short gaps (30 cycles) would all be delayed by thresholds of 10
        # or 20 (3% slowdown, over budget); threshold 50 only delays the 1000
        # long gaps (0.1%), so 50 is the most aggressive admissible choice.
        gaps = [30] * 30_000 + [150] * 1_000
        profile = self._profile(gaps, total_cycles=1_000_000)
        assert select_threshold(profile, budget=0.01) == 50

    def test_select_falls_back_to_largest_candidate(self):
        # Huge number of large gaps: nothing fits a tiny budget.
        gaps = [5000] * 50_000
        profile = self._profile(gaps, total_cycles=100_000)
        assert select_threshold(profile, budget=1e-9) == max(CANDIDATE_THRESHOLDS)

    def test_low_locality_workload_gets_larger_threshold(self):
        tight = self._profile([20] * 2000, total_cycles=100_000)
        scattered = self._profile([400] * 2000, total_cycles=100_000)
        assert select_threshold(tight) <= select_threshold(scattered)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            select_threshold(self._profile([10]), candidates=[])
        with pytest.raises(ValueError):
            select_threshold(self._profile([10]), candidates=[0])
        with pytest.raises(ValueError):
            self._profile([10], total_cycles=0).estimated_slowdown(10)
