"""Tests for gated precharging, the decay counter and predecoding."""

import pytest

from repro.circuits.cacti import cache_organization
from repro.core import DecayCounter, GatedPrechargePolicy, Predecoder, counter_energy_fraction
from repro.core.decay_counter import DEFAULT_COUNTER_BITS

from tests.conftest import make_attached


class TestDecayCounter:
    def test_resets_on_access(self):
        counter = DecayCounter(threshold=100)
        counter.advance(50)
        counter.reset()
        assert counter.value == 0
        assert counter.is_hot

    def test_goes_cold_at_threshold(self):
        counter = DecayCounter(threshold=10)
        counter.advance(9)
        assert counter.is_hot
        counter.tick()
        assert not counter.is_hot

    def test_saturates_at_counter_width(self):
        counter = DecayCounter(threshold=100, bits=10)
        counter.advance(10_000)
        assert counter.value == 1023

    def test_ten_bits_are_enough_for_paper_thresholds(self):
        # The paper's thresholds are on the order of 10-1000.
        for threshold in (10, 100, 1000):
            DecayCounter(threshold=threshold, bits=DEFAULT_COUNTER_BITS)

    def test_threshold_must_fit_counter(self):
        with pytest.raises(ValueError):
            DecayCounter(threshold=2000, bits=10)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            DecayCounter(threshold=10).advance(-1)

    def test_hardware_energy_is_negligible(self):
        # The paper estimates under 0.02% of one cache access per counter.
        assert counter_energy_fraction(32) < 0.01
        with pytest.raises(ValueError):
            counter_energy_fraction(0)


class TestGatedCounterBank:
    def test_bank_matches_lazy_evaluation(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=100))
        for subarray, cycle in [(0, 10), (1, 40), (0, 90), (2, 120)]:
            policy.access(subarray, cycle)
        for probe in (0, 50, 120, 189, 190, 250, 5_000):
            bank = policy.counter_bank(probe)
            expected = [
                policy._is_precharged(index, probe)
                for index in range(len(bank))
            ]
            assert [bank.is_hot(index) for index in range(len(bank))] == expected
            assert policy.precharged_subarrays(probe) == sum(expected)

    def test_bank_widens_for_large_thresholds(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=5_000))
        policy.access(0, 0)
        bank = policy.counter_bank(4_999)
        assert bank.saturation_value >= 5_000
        assert bank.is_hot(0)
        assert policy.precharged_subarrays(4_999) == len(bank)
        assert not policy.counter_bank(5_000).is_hot(0)


class TestGatedPolicy:
    def test_hot_subarray_not_delayed(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=100))
        policy.access(0, 0)
        assert policy.access(0, 50) == 0
        assert policy.stats.delayed_accesses == 0

    def test_cold_subarray_pays_pull_up(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=100))
        policy.access(0, 0)
        assert policy.access(0, 500) >= 1
        assert policy.misprediction_rate == pytest.approx(0.5)

    def test_gap_equal_to_threshold_stays_hot(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=100))
        policy.access(0, 0)
        assert policy.access(0, 100) == 0

    def test_smaller_threshold_isolates_more(self):
        aggressive, ledger_a = make_attached(GatedPrechargePolicy(threshold=10))
        conservative, ledger_c = make_attached(GatedPrechargePolicy(threshold=1000))
        for cycle in range(0, 50_000, 200):
            subarray = (cycle // 200) % 4
            aggressive.access(subarray, cycle)
            conservative.access(subarray, cycle)
        aggressive.finalize(50_000)
        conservative.finalize(50_000)
        a = ledger_a.breakdown(50_000)
        c = ledger_c.breakdown(50_000)
        assert a.precharged_fraction < c.precharged_fraction
        assert a.relative_discharge < c.relative_discharge

    def test_hot_subarrays_stay_precharged_between_accesses(self):
        """The key difference to the oracle: no toggle within the threshold."""
        policy, ledger = make_attached(GatedPrechargePolicy(threshold=100))
        for cycle in range(0, 1000, 50):
            policy.access(0, cycle)
        assert policy.stats.toggles == 0  # never idle long enough to isolate
        policy.finalize(1001)
        breakdown = ledger.breakdown(1001)
        # Subarray 0 stayed precharged essentially the whole run.
        assert breakdown.precharged_subarray_cycles >= 900

    def test_precharged_subarrays_snapshot(self):
        policy, _ = make_attached(GatedPrechargePolicy(threshold=100))
        policy.access(0, 1000)
        policy.access(5, 1000)
        assert policy.precharged_subarrays(1050) == 2
        assert policy.precharged_subarrays(5000) == 0

    def test_never_accessed_subarrays_isolated_after_threshold(self):
        policy, ledger = make_attached(GatedPrechargePolicy(threshold=100))
        policy.finalize(10_000)
        breakdown = ledger.breakdown(10_000)
        assert breakdown.precharged_fraction == pytest.approx(0.01, abs=0.01)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GatedPrechargePolicy(threshold=0)
        with pytest.raises(ValueError):
            GatedPrechargePolicy(threshold=100, predecode_lead_cycles=0)


class TestPredecode:
    def test_correct_prediction_when_base_in_same_subarray(self, l1_org):
        predecoder = Predecoder(l1_org)
        address = 0x1000_0100
        base = address - 16
        actual = l1_org.subarray_for_address(address)
        assert predecoder.predicts_correctly(base, actual)
        assert predecoder.stats.accuracy == 1.0

    def test_wrong_prediction_when_displacement_crosses_subarray(self, l1_org):
        predecoder = Predecoder(l1_org)
        address = 0x1000_0000
        base = address - 1000  # crosses into a different subarray
        actual = l1_org.subarray_for_address(address)
        assert not predecoder.predicts_correctly(base, actual)
        assert predecoder.stats.accuracy == 0.0

    def test_no_prediction_without_base_register(self, l1_org):
        predecoder = Predecoder(l1_org)
        assert not predecoder.predicts_correctly(None, 0)
        assert predecoder.stats.attempts == 0

    def test_gated_with_predecode_hides_some_penalties(self, l1_org):
        with_predecode, _ = make_attached(
            GatedPrechargePolicy(threshold=50, use_predecode=True), l1_org
        )
        without, _ = make_attached(GatedPrechargePolicy(threshold=50), l1_org)
        # Access a cold subarray with a base address in the same subarray:
        # predecoding identifies it early and hides the penalty.
        address = 0x0
        subarray = l1_org.subarray_for_address(address)
        with_predecode.access(subarray, 10_000, base_address=address, address=address)
        without.access(subarray, 10_000, base_address=address, address=address)
        assert with_predecode.stats.delayed_accesses == 0
        assert without.stats.delayed_accesses == 1
        assert with_predecode.stats.predecode_hits == 1

    def test_gated_predecode_miss_still_pays_penalty(self, l1_org):
        policy, _ = make_attached(
            GatedPrechargePolicy(threshold=50, use_predecode=True), l1_org
        )
        address = 0x0
        subarray = l1_org.subarray_for_address(address)
        far_base = address + 1000  # maps to a different subarray
        assert l1_org.subarray_for_address(far_base) != subarray
        penalty = policy.access(subarray, 10_000, base_address=far_base, address=address)
        assert penalty >= 1
