"""Tests for the policy registry and PolicySpec."""

import pytest

from repro.core import GatedPrechargePolicy, StaticPullUpPolicy
from repro.core.registry import (
    PolicySpec,
    create_policy,
    get_policy_info,
    policy_names,
    register_policy,
    unregister_policy,
)
from repro.sim import SimEngine, SimulationConfig


class TestRegistryLookup:
    def test_builtins_are_registered(self):
        names = policy_names()
        for name in ("static", "oracle", "on-demand", "gated", "gated-predecode", "resizable"):
            assert name in names

    def test_aliases_resolve(self):
        assert get_policy_info("ondemand").name == "on-demand"
        assert get_policy_info("on_demand").name == "on-demand"
        assert get_policy_info("gated_predecode").name == "gated-predecode"

    def test_lookup_is_case_insensitive(self):
        assert get_policy_info("GATED").name == "gated"

    def test_unknown_name_rejected_with_suggestions(self):
        with pytest.raises(ValueError, match="drowsy.*choose from"):
            get_policy_info("drowsy")

    def test_defaults_captured_from_signature(self):
        info = get_policy_info("gated")
        assert info.defaults["threshold"] == 100
        assert get_policy_info("on-demand").scheduler_extra_latency == 1
        assert get_policy_info("static").scheduler_extra_latency == 0

    def test_create_policy_passes_params(self):
        policy = create_policy("gated", threshold=250)
        assert isinstance(policy, GatedPrechargePolicy)
        assert policy.threshold == 250


class TestPolicySpec:
    def test_params_mapping_is_normalised_and_hashable(self):
        a = PolicySpec("gated", {"use_predecode": True, "threshold": 50})
        b = PolicySpec("GATED", (("threshold", 50), ("use_predecode", True)))
        assert a == b
        assert hash(a) == hash(b)

    def test_get_and_asdict(self):
        spec = PolicySpec("gated", {"threshold": 50})
        assert spec.get("threshold") == 50
        assert spec.get("missing", 7) == 7
        assert spec.asdict() == {"threshold": 50}

    def test_with_params_returns_modified_copy(self):
        spec = PolicySpec("gated", {"threshold": 50})
        other = spec.with_params(threshold=200)
        assert other.get("threshold") == 200
        assert spec.get("threshold") == 50

    def test_canonical_fills_defaults(self):
        bare = PolicySpec("gated")
        explicit = PolicySpec("gated", {"threshold": 100, "predecode_lead_cycles": 2})
        assert bare.canonical() == explicit.canonical()
        assert bare.cache_key() == explicit.cache_key()

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            PolicySpec("static", {"threshold": 5}).canonical()

    def test_build_constructs_policy(self):
        policy = PolicySpec("gated-predecode", {"threshold": 30}).build()
        assert isinstance(policy, GatedPrechargePolicy)
        assert policy.use_predecode and policy.threshold == 30

    def test_dict_round_trip(self):
        spec = PolicySpec("gated", {"threshold": 75})
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "text,name,params",
        [
            ("static", "static", {}),
            ("gated:threshold=150", "gated", {"threshold": 150}),
            (
                "gated:threshold=150,predecode_lead_cycles=3",
                "gated",
                {"threshold": 150, "predecode_lead_cycles": 3},
            ),
            ("resizable:miss_ratio_slack=0.05", "resizable", {"miss_ratio_slack": 0.05}),
        ],
    )
    def test_parse(self, text, name, params):
        spec = PolicySpec.parse(text)
        assert spec.name == name
        assert spec.asdict() == params

    def test_parse_booleans(self):
        assert PolicySpec.parse("x:a=true,b=off").asdict() == {"a": True, "b": False}

    def test_parse_rejects_malformed_params(self):
        with pytest.raises(ValueError, match="key=value"):
            PolicySpec.parse("gated:threshold")


class ExternalHoldPolicy(StaticPullUpPolicy):
    """A 'third-party' policy defined entirely outside repro.sim."""

    def __init__(self, hold_fraction: float = 1.0) -> None:
        super().__init__()
        self.hold_fraction = hold_fraction


@pytest.fixture()
def external_policy():
    register_policy("external-hold", description="test-only policy")(ExternalHoldPolicy)
    yield "external-hold"
    unregister_policy("external-hold")


class TestThirdPartyRegistration:
    """A new policy plugs into the full driver with no driver edits."""

    def test_spec_flows_through_config_and_engine(self, external_policy):
        config = SimulationConfig(
            benchmark="gcc",
            dcache=PolicySpec(external_policy, {"hold_fraction": 0.5}),
            icache=PolicySpec("static"),
            n_instructions=1_500,
        )
        assert isinstance(config.dcache_controller(), ExternalHoldPolicy)
        assert config.dcache_controller().hold_fraction == 0.5

        engine = SimEngine()
        result = engine.run(config)
        assert result.dcache_policy == "external-hold"
        assert result.cycles > 0
        # The memo key is derived from the spec: an identical second run hits.
        assert engine.run(config) is result
        # A different parameterisation is a different key.
        other = SimulationConfig(
            benchmark="gcc",
            dcache=PolicySpec(external_policy, {"hold_fraction": 0.9}),
            n_instructions=1_500,
        )
        assert other.cache_key() != config.cache_key()

    def test_legacy_string_fields_also_reach_external_policy(self, external_policy):
        config = SimulationConfig(dcache_policy=external_policy, n_instructions=1_000)
        assert isinstance(config.dcache_controller(), ExternalHoldPolicy)

    def test_unregistered_name_fails_at_config_time(self):
        with pytest.raises(ValueError):
            SimulationConfig(dcache_policy="never-registered")

    def test_shadowing_registration_does_not_inherit_aliases(self):
        register_policy("shadow-target", aliases=("shadow-alias",))(ExternalHoldPolicy)
        try:
            assert get_policy_info("shadow-alias").name == "shadow-target"
            # Re-register under the same name without the alias: the alias
            # must stop resolving rather than silently reach the shadow.
            register_policy("shadow-target")(ExternalHoldPolicy)
            with pytest.raises(ValueError):
                get_policy_info("shadow-alias")
        finally:
            unregister_policy("shadow-target")

    def test_name_may_not_shadow_an_existing_alias(self):
        # "ondemand" is an alias of "on-demand"; a policy registered under
        # it would be unreachable (alias resolution wins in lookups).
        with pytest.raises(ValueError, match="already an alias"):
            register_policy("ondemand")(ExternalHoldPolicy)

    def test_unhashable_params_rejected_at_construction(self):
        with pytest.raises(ValueError, match="hashable"):
            PolicySpec("gated", {"threshold": [100]})

    def test_alias_may_not_steal_another_policys_name(self):
        with pytest.raises(ValueError, match="collides"):
            register_policy("thief", aliases=("static",))(ExternalHoldPolicy)
        assert "thief" not in policy_names()
        with pytest.raises(ValueError, match="collides"):
            register_policy("thief", aliases=("ondemand",))(ExternalHoldPolicy)

    def test_multi_positional_construction_rejected(self):
        # The old field order had thresholds where n_instructions/seed now
        # sit; silent reinterpretation would run the wrong simulation.
        with pytest.raises(TypeError, match="positional"):
            SimulationConfig("gcc", "static", "static")
        assert SimulationConfig("gcc").benchmark == "gcc"

    def test_unregister_accepts_aliases(self):
        register_policy("tmp-pol", aliases=("tmp-alias",))(ExternalHoldPolicy)
        unregister_policy("tmp-alias")
        assert "tmp-pol" not in policy_names()
        with pytest.raises(ValueError):
            get_policy_info("tmp-alias")

    def test_legacy_threshold_dropped_with_warning(self):
        with pytest.warns(FutureWarning, match="takes no threshold"):
            config = SimulationConfig(dcache_policy="static", dcache_threshold=150)
        # The spec carries no threshold; the accessor reports the default.
        assert config.dcache.get("threshold") is None
        assert config.dcache_threshold == 100
