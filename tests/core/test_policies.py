"""Tests for the precharge-control policies (static, oracle, on-demand)."""

import pytest

from repro.core import (
    OnDemandPrechargePolicy,
    OraclePrechargePolicy,
    StaticPullUpPolicy,
)

from tests.conftest import make_attached


class TestStaticPullUp:
    def test_never_delays(self):
        policy, _ = make_attached(StaticPullUpPolicy())
        for cycle in (0, 100, 10_000):
            assert policy.access(0, cycle) == 0
        assert policy.stats.delayed_accesses == 0
        assert policy.stats.prediction_accuracy == 1.0

    def test_everything_precharged_all_the_time(self):
        policy, ledger = make_attached(StaticPullUpPolicy())
        policy.access(0, 100)
        policy.access(5, 400)
        policy.finalize(1000)
        breakdown = ledger.breakdown(1000)
        assert breakdown.precharged_fraction == pytest.approx(1.0)
        assert breakdown.relative_discharge == pytest.approx(1.0)

    def test_all_subarrays_reported_precharged(self):
        policy, _ = make_attached(StaticPullUpPolicy())
        assert policy.precharged_subarrays(500) == policy.organization.n_subarrays

    def test_requires_attachment(self):
        with pytest.raises(RuntimeError):
            StaticPullUpPolicy().access(0, 0)


class TestOracle:
    def test_never_delays_accesses(self):
        policy, _ = make_attached(OraclePrechargePolicy())
        for cycle in (10, 500, 20_000):
            assert policy.access(3, cycle) == 0
        assert policy.stats.delayed_accesses == 0

    def test_precharged_fraction_is_tiny(self):
        policy, ledger = make_attached(OraclePrechargePolicy())
        for cycle in range(0, 50_000, 50):
            policy.access(cycle % 32, cycle)
        policy.finalize(50_000)
        breakdown = ledger.breakdown(50_000)
        assert breakdown.precharged_fraction < 0.01

    def test_large_discharge_savings_at_70nm(self):
        policy, ledger = make_attached(OraclePrechargePolicy())
        # One access per subarray every 3200 cycles (realistic hot pattern).
        for cycle in range(0, 100_000, 100):
            policy.access((cycle // 100) % 32, cycle)
        policy.finalize(100_000)
        breakdown = ledger.breakdown(100_000)
        assert breakdown.discharge_savings > 0.7

    def test_toggles_once_per_idle_interval(self):
        policy, ledger = make_attached(OraclePrechargePolicy())
        for cycle in (0, 1000, 2000, 3000):
            policy.access(0, cycle)
        # Three idle intervals between the four accesses end in a toggle.
        assert policy.stats.toggles == 3
        policy.finalize(4000)
        # Finalize closes subarray 0's trailing interval plus the 31
        # never-accessed subarrays (isolated after their initial hold).
        assert ledger.toggles == 3 + 32

    def test_hold_cycles_must_be_positive(self):
        with pytest.raises(ValueError):
            OraclePrechargePolicy(hold_cycles=0)

    def test_is_precharged_only_during_access_window(self):
        policy, _ = make_attached(OraclePrechargePolicy(hold_cycles=2))
        policy.access(0, 100)
        assert policy._is_precharged(0, 101)
        assert not policy._is_precharged(0, 200)


class TestOnDemand:
    def test_every_access_is_delayed(self):
        policy, _ = make_attached(OnDemandPrechargePolicy())
        penalties = [policy.access(1, cycle) for cycle in (0, 10, 1000)]
        assert all(p >= 1 for p in penalties)
        assert policy.stats.delayed_accesses == 3
        assert policy.stats.prediction_accuracy == 0.0

    def test_penalty_matches_pull_up_cycles(self):
        policy, _ = make_attached(OnDemandPrechargePolicy())
        penalty = policy.access(0, 100)
        assert penalty == policy.penalty_cycles_per_delayed_access
        assert penalty == policy.organization.isolated_access_penalty_cycles

    def test_energy_accounting_matches_oracle(self):
        """On-demand saves the same discharge as the oracle (Section 5)."""
        ondemand, ledger_od = make_attached(OnDemandPrechargePolicy())
        oracle, ledger_or = make_attached(OraclePrechargePolicy())
        for cycle in range(0, 20_000, 40):
            subarray = (cycle // 40) % 32
            ondemand.access(subarray, cycle)
            oracle.access(subarray, cycle)
        ondemand.finalize(20_000)
        oracle.finalize(20_000)
        od = ledger_od.breakdown(20_000)
        orc = ledger_or.breakdown(20_000)
        assert od.relative_discharge == pytest.approx(orc.relative_discharge, rel=1e-6)

    def test_hold_cycles_validated(self):
        with pytest.raises(ValueError):
            OnDemandPrechargePolicy(hold_cycles=0)

    def test_finalize_idempotent(self):
        policy, ledger = make_attached(OnDemandPrechargePolicy())
        policy.access(0, 100)
        policy.finalize(1000)
        first = ledger.breakdown(1000).bitline_discharge_j
        policy.finalize(1000)
        assert ledger.breakdown(1000).bitline_discharge_j == pytest.approx(first)
